//! **Frozen** copy of the scalar Algorithm 1 solver — the bit-identity
//! oracle for the batch core.
//!
//! This module is a verbatim snapshot of `dlt::linear::{solve,
//! equivalent_time, solve_suffix}` taken when `dlt::batch` was introduced.
//! The differential test suite (`dlt/tests/batch_identity.rs`) and the E27
//! experiment pin every batch-core output byte-for-byte against these
//! functions, and a drift test in `linear` pins the live scalar solver
//! against this snapshot.
//!
//! **Do not modify the floating-point operations in this file.** Any change
//! to the sequence of FP operations here silently re-baselines every
//! bit-identity contract in the repository. (The `obs` counters of the live
//! solver are deliberately omitted: they do not participate in the
//! arithmetic and the reference is used inside tight differential loops.)

use crate::linear::LinearSolution;
use crate::model::{LinearNetwork, LocalAllocation};

/// Frozen Algorithm 1 (see [`crate::linear::solve`]).
pub fn solve(net: &LinearNetwork) -> LinearSolution {
    let m = net.last_index();
    let mut alpha_hat = vec![0.0; m + 1];
    let mut w_bar = vec![0.0; m + 1];
    alpha_hat[m] = 1.0;
    w_bar[m] = net.w(m);
    for i in (0..m).rev() {
        let tail = w_bar[i + 1] + net.z(i + 1);
        alpha_hat[i] = tail / (net.w(i) + tail); // eq. 2.7
        w_bar[i] = alpha_hat[i] * net.w(i); // eq. 2.4
    }
    let local = LocalAllocation::new(alpha_hat);
    let alloc = local.to_global();
    LinearSolution {
        local,
        alloc,
        equivalent: w_bar,
    }
}

/// Frozen equivalent-time recursion (see [`crate::linear::equivalent_time`]).
/// Note the FP operation order differs from [`solve`]'s `w̄` recursion
/// (`w·t/(w+t)` vs `(t/(w+t))·w`), so the two are *distinct* bit-identity
/// targets; the payment path depends on both.
pub fn equivalent_time(net: &LinearNetwork) -> f64 {
    let m = net.last_index();
    let mut w_bar = net.w(m);
    for i in (0..m).rev() {
        let tail = w_bar + net.z(i + 1);
        w_bar = net.w(i) * tail / (net.w(i) + tail);
    }
    w_bar
}

/// Frozen suffix solve (see [`crate::linear::solve_suffix`]).
pub fn solve_suffix(net: &LinearNetwork, i: usize) -> LinearSolution {
    solve(&net.suffix(i))
}

#[cfg(test)]
mod tests {
    use crate::model::LinearNetwork;

    /// The live scalar solver must not drift from the frozen snapshot: if
    /// this test fails, someone edited `linear::solve` (or this file) and
    /// every bit-identity baseline in the repo needs re-auditing.
    #[test]
    fn live_solver_pinned_to_frozen_reference() {
        let nets = [
            LinearNetwork::from_rates(&[1.0, 2.0, 0.5, 4.0], &[0.2, 0.1, 0.7]),
            LinearNetwork::from_rates(&[0.7, 1.3, 2.2, 0.9, 3.1], &[0.15, 0.25, 0.35, 0.4]),
            LinearNetwork::homogeneous(1, 3.0, 0.0),
            LinearNetwork::homogeneous(64, 1.0, 0.1),
        ];
        for net in &nets {
            let live = crate::linear::solve(net);
            let frozen = super::solve(net);
            assert_eq!(format!("{live:?}"), format!("{frozen:?}"));
            assert_eq!(
                crate::linear::equivalent_time(net).to_bits(),
                super::equivalent_time(net).to_bits()
            );
            for i in 0..net.len() {
                let a = crate::linear::solve_suffix(net, i);
                let b = super::solve_suffix(net, i);
                assert_eq!(format!("{a:?}"), format!("{b:?}"), "suffix {i}");
            }
        }
    }
}
