//! Multi-installment (multi-round) scheduling for chains — the extension
//! direction of Yang, van der Raadt & Casanova \[21\], cited by the paper.
//!
//! Under the front-end model, single-installment chains already overlap
//! forwarding with computation; what they cannot avoid is the *ramp-up*:
//! processor `P_i` idles until its entire share has arrived. Splitting the
//! load into `k` installments lets `P_i` start after roughly `1/k` of that
//! wait, so far processors can absorb **more load** — the real source of
//! multi-round gains (with the single-round split, the root still computes
//! `α_0 w_0` and nothing improves).
//!
//! Multi-installment optimality is a hard open problem in general (\[21\]
//! is devoted to it); this module takes the engineering route:
//!
//! * [`finish_times_with`] — *exact* evaluation of the discrete pipelined
//!   timing recurrence for any allocation, under the one-port model with a
//!   per-installment communication startup (the cost that makes `k → ∞`
//!   counterproductive);
//! * [`optimize_allocation`] — a damped multiplicative equalizer that
//!   rebalances load until all finish times meet, evaluated against the
//!   exact recurrence at every step (finish times are monotone in own
//!   load, so equalization drives the makespan down);
//! * [`schedule`] / [`round_sweep`] — the user-facing API and the
//!   U-shaped makespan-vs-`k` data series.

use crate::linear;
use crate::model::{Allocation, LinearNetwork, EPSILON};

/// Multi-installment schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiRoundConfig {
    /// Number of installments `k ≥ 1`.
    pub rounds: usize,
    /// Per-installment communication startup on every link.
    pub comm_startup: f64,
}

impl MultiRoundConfig {
    /// `k` uniform installments with the given per-message startup.
    pub fn new(rounds: usize, comm_startup: f64) -> Self {
        assert!(rounds >= 1);
        assert!(comm_startup >= 0.0);
        Self {
            rounds,
            comm_startup,
        }
    }
}

/// Exact per-processor finish times of the discrete pipelined schedule for
/// a given total allocation split into `k` uniform installments.
///
/// Timing recurrence (round `r`, processor `i`, link `ℓ_i` into `i`):
///
/// * link `ℓ_i` carries round `r` once it finished round `r−1` **and**
///   the sender holds round `r`;
/// * `recv_end[r][i] = max(link_free_i, recv_end[r][i−1]) + c + D_i^r·z_i`;
/// * processors compute rounds in order:
///   `comp_end[r][i] = max(comp_end[r−1][i], recv_end[r][i]) + α_i^r·w_i`.
pub fn finish_times_with(
    net: &LinearNetwork,
    config: &MultiRoundConfig,
    alloc: &Allocation,
) -> Vec<Vec<f64>> {
    let n = net.len();
    assert_eq!(alloc.len(), n);
    let k = config.rounds;
    let share = 1.0 / k as f64;
    let received = alloc.received();
    let mut recv_end = vec![0.0f64; n];
    let mut comp_end = vec![vec![0.0f64; n]; k];
    let mut link_free = vec![0.0f64; n];
    for r in 0..k {
        for i in 0..n {
            if i == 0 {
                recv_end[0] = 0.0; // the root holds every round from t = 0
            } else {
                let amount = received[i] * share;
                if amount > EPSILON {
                    let start = link_free[i].max(recv_end[i - 1]);
                    let end = start + config.comm_startup + amount * net.z(i);
                    link_free[i] = end;
                    recv_end[i] = end;
                }
                // else: nothing ships this round; recv_end[i] keeps its
                // previous value (no new arrival).
            }
            let prev_comp = if r == 0 { 0.0 } else { comp_end[r - 1][i] };
            comp_end[r][i] = prev_comp.max(recv_end[i]) + alloc.alpha(i) * share * net.w(i);
        }
    }
    comp_end
}

/// The makespan of the discrete schedule for a given allocation.
pub fn makespan_with(net: &LinearNetwork, config: &MultiRoundConfig, alloc: &Allocation) -> f64 {
    finish_times_with(net, config, alloc)
        .last()
        .expect("k >= 1")
        .iter()
        .copied()
        .fold(0.0, f64::max)
}

/// Optimize the total allocation for the discrete `k`-round schedule by
/// damped multiplicative equalization of finish times. Returns the best
/// allocation found and its exact makespan.
pub fn optimize_allocation(net: &LinearNetwork, config: &MultiRoundConfig) -> (Allocation, f64) {
    let n = net.len();
    // Start from the single-round optimum.
    let mut fractions = linear::solve(net).alloc.fractions().to_vec();
    let mut best = fractions.clone();
    let mut best_ms = makespan_with(net, config, &Allocation::new(fractions.clone()));
    for _ in 0..120 {
        let alloc = Allocation::new(fractions.clone());
        let finals = finish_times_with(net, config, &alloc);
        let finish = finals.last().expect("k >= 1");
        let ms = finish.iter().copied().fold(0.0, f64::max);
        if ms < best_ms {
            best_ms = ms;
            best = fractions.clone();
        }
        let mean = finish.iter().sum::<f64>() / n as f64;
        let spread = finish.iter().copied().fold(0.0f64, f64::max)
            - finish.iter().copied().fold(f64::INFINITY, f64::min);
        if spread < 1e-12 * mean.max(1.0) {
            break;
        }
        // Damped multiplicative update: nodes finishing late shed load,
        // nodes finishing early absorb it.
        let mut total = 0.0;
        for (i, f) in fractions.iter_mut().enumerate() {
            let ratio = (mean / finish[i].max(1e-300)).sqrt();
            *f = (*f * ratio).max(1e-12);
            total += *f;
        }
        for f in fractions.iter_mut() {
            *f /= total;
        }
    }
    (Allocation::new(best), best_ms)
}

/// The computed multi-round schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiRoundSchedule {
    /// Exact makespan of the discrete pipelined schedule.
    pub makespan: f64,
    /// Per-round, per-processor compute completion times
    /// (`compute_end[r][i]`).
    pub compute_end: Vec<Vec<f64>>,
    /// The total (all rounds) allocation per processor.
    pub total_alloc: Allocation,
    /// Number of rounds.
    pub rounds: usize,
}

/// Compute the optimized multi-round schedule.
pub fn schedule(net: &LinearNetwork, config: &MultiRoundConfig) -> MultiRoundSchedule {
    let (total_alloc, makespan) = if config.rounds == 1 && config.comm_startup == 0.0 {
        let sol = linear::solve(net);
        let ms = sol.makespan();
        (sol.alloc, ms)
    } else {
        optimize_allocation(net, config)
    };
    let compute_end = finish_times_with(net, config, &total_alloc);
    MultiRoundSchedule {
        makespan,
        compute_end,
        total_alloc,
        rounds: config.rounds,
    }
}

/// Makespan as a function of `k` over `1..=max_rounds` — the U-curve data
/// series.
pub fn round_sweep(net: &LinearNetwork, comm_startup: f64, max_rounds: usize) -> Vec<(usize, f64)> {
    (1..=max_rounds)
        .map(|k| {
            (
                k,
                schedule(net, &MultiRoundConfig::new(k, comm_startup)).makespan,
            )
        })
        .collect()
}

/// The best round count on `1..=max_rounds` and its makespan.
pub fn best_rounds(net: &LinearNetwork, comm_startup: f64, max_rounds: usize) -> (usize, f64) {
    round_sweep(net, comm_startup, max_rounds)
        .into_iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("max_rounds >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> LinearNetwork {
        // Slow links make pipelining worthwhile.
        LinearNetwork::from_rates(&[1.0, 1.0, 1.0, 1.0], &[0.8, 0.8, 0.8])
    }

    #[test]
    fn one_round_without_startup_matches_single_installment() {
        let net = net();
        let sched = schedule(&net, &MultiRoundConfig::new(1, 0.0));
        let single = linear::solve(&net);
        assert!((sched.makespan - single.makespan()).abs() < 1e-9);
    }

    #[test]
    fn recurrence_with_single_round_reproduces_eq_22() {
        // k = 1: the recurrence must equal the closed-form finish times.
        let net = net();
        let sol = linear::solve(&net);
        let cfg = MultiRoundConfig::new(1, 0.0);
        let finals = finish_times_with(&net, &cfg, &sol.alloc);
        let expected = crate::timing::finish_times(&net, &sol.alloc);
        for i in 0..net.len() {
            assert!((finals[0][i] - expected[i]).abs() < 1e-12, "P{i}");
        }
    }

    #[test]
    fn pipelining_helps_on_slow_links() {
        let net = net();
        let k1 = schedule(&net, &MultiRoundConfig::new(1, 0.0)).makespan;
        let k8 = schedule(&net, &MultiRoundConfig::new(8, 0.0)).makespan;
        assert!(k8 < k1 - 1e-4, "8 rounds {k8} vs 1 round {k1}");
    }

    #[test]
    fn optimizer_never_loses_to_single_round_split() {
        let net = net();
        for k in [2usize, 4, 16] {
            let cfg = MultiRoundConfig::new(k, 0.0);
            let single_split = linear::solve(&net).alloc;
            let naive = makespan_with(&net, &cfg, &single_split);
            let (_, optimized) = optimize_allocation(&net, &cfg);
            assert!(
                optimized <= naive + 1e-9,
                "k={k}: {optimized} vs naive {naive}"
            );
        }
    }

    #[test]
    fn with_startup_the_curve_is_u_shaped() {
        let net = net();
        let startup = 0.05;
        let sweep = round_sweep(&net, startup, 32);
        let (best_k, best_ms) = best_rounds(&net, startup, 32);
        assert!(best_k > 1, "some pipelining should pay: {sweep:?}");
        assert!(best_k < 32, "startup should cap the useful round count");
        assert!(sweep[0].1 > best_ms);
        assert!(sweep[31].1 > best_ms);
    }

    #[test]
    fn more_rounds_shift_load_to_the_tail() {
        let net = net();
        let k1 = schedule(&net, &MultiRoundConfig::new(1, 0.0));
        let k8 = schedule(&net, &MultiRoundConfig::new(8, 0.0));
        let m = net.last_index();
        assert!(
            k8.total_alloc.alpha(m) > k1.total_alloc.alpha(m) + 1e-6,
            "the terminal processor should absorb more load when it starts earlier: {} vs {}",
            k8.total_alloc.alpha(m),
            k1.total_alloc.alpha(m)
        );
    }

    #[test]
    fn rounds_complete_in_order_per_processor() {
        let net = net();
        let sched = schedule(&net, &MultiRoundConfig::new(5, 0.01));
        for i in 0..net.len() {
            for r in 1..5 {
                assert!(sched.compute_end[r][i] >= sched.compute_end[r - 1][i]);
            }
        }
    }

    #[test]
    fn total_load_is_preserved() {
        let net = net();
        for k in [1usize, 3, 7] {
            let sched = schedule(&net, &MultiRoundConfig::new(k, 0.01));
            sched.total_alloc.validate().unwrap();
        }
    }

    #[test]
    fn fast_links_gain_little_from_pipelining() {
        let fast = LinearNetwork::from_rates(&[1.0, 1.0, 1.0, 1.0], &[0.01, 0.01, 0.01]);
        let k1 = schedule(&fast, &MultiRoundConfig::new(1, 0.0)).makespan;
        let k8 = schedule(&fast, &MultiRoundConfig::new(8, 0.0)).makespan;
        assert!(
            (k1 - k8) / k1 < 0.05,
            "gain should be marginal: {k1} vs {k8}"
        );
    }

    #[test]
    fn makespan_bounded_below_by_aggregate_speed() {
        let net = net();
        let agg: f64 = net.rates_w().iter().map(|w| 1.0 / w).sum();
        for k in [1usize, 2, 8, 32] {
            let sched = schedule(&net, &MultiRoundConfig::new(k, 0.0));
            assert!(sched.makespan >= 1.0 / agg - 1e-9);
        }
    }

    #[test]
    fn heterogeneous_chain_also_improves() {
        let net = LinearNetwork::from_rates(&[1.2, 0.7, 2.0, 0.9], &[0.6, 0.9, 0.5]);
        let k1 = schedule(&net, &MultiRoundConfig::new(1, 0.0)).makespan;
        let k6 = schedule(&net, &MultiRoundConfig::new(6, 0.0)).makespan;
        assert!(k6 < k1, "{k6} vs {k1}");
    }
}
