//! Multi-installment (multi-round) scheduling for chains — the extension
//! direction of Yang, van der Raadt & Casanova \[21\], cited by the paper.
//!
//! Under the front-end model, single-installment chains already overlap
//! forwarding with computation; what they cannot avoid is the *ramp-up*:
//! processor `P_i` idles until its entire share has arrived. Splitting the
//! load into `k` installments lets `P_i` start after roughly `1/k` of that
//! wait, so far processors can absorb **more load** — the real source of
//! multi-round gains (with the single-round split, the root still computes
//! `α_0 w_0` and nothing improves).
//!
//! Multi-installment optimality is a hard open problem in general (\[21\]
//! is devoted to it); this module takes the engineering route:
//!
//! * [`finish_times_with`] — *exact* evaluation of the discrete pipelined
//!   timing recurrence for any allocation, under the one-port model with a
//!   per-installment communication startup (the cost that makes `k → ∞`
//!   counterproductive);
//! * [`optimize_allocation`] — a damped multiplicative equalizer that
//!   rebalances load until all finish times meet, evaluated against the
//!   exact recurrence at every step (finish times are monotone in own
//!   load, so equalization drives the makespan down);
//! * [`schedule`] / [`round_sweep`] — the user-facing API and the
//!   U-shaped makespan-vs-`k` data series.

use crate::linear;
use crate::model::{Allocation, LinearNetwork, EPSILON};

/// Multi-installment schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiRoundConfig {
    /// Number of installments `k ≥ 1`.
    pub rounds: usize,
    /// Per-installment communication startup on every link.
    pub comm_startup: f64,
}

impl MultiRoundConfig {
    /// `k` uniform installments with the given per-message startup.
    pub fn new(rounds: usize, comm_startup: f64) -> Self {
        assert!(rounds >= 1);
        assert!(comm_startup >= 0.0);
        Self {
            rounds,
            comm_startup,
        }
    }
}

/// Exact per-processor finish times of the discrete pipelined schedule for
/// a given total allocation split into `k` uniform installments.
///
/// Timing recurrence (round `r`, processor `i`, link `ℓ_i` into `i`):
///
/// * link `ℓ_i` carries round `r` once it finished round `r−1` **and**
///   the sender holds round `r`;
/// * `recv_end[r][i] = max(link_free_i, recv_end[r][i−1]) + c + D_i^r·z_i`;
/// * processors compute rounds in order:
///   `comp_end[r][i] = max(comp_end[r−1][i], recv_end[r][i]) + α_i^r·w_i`.
pub fn finish_times_with(
    net: &LinearNetwork,
    config: &MultiRoundConfig,
    alloc: &Allocation,
) -> Vec<Vec<f64>> {
    let n = net.len();
    assert_eq!(alloc.len(), n);
    let mut link_free = vec![0.0f64; n];
    let mut comp_last = vec![0.0f64; n];
    finish_times_scaled(net, config, alloc, 1.0, &mut link_free, &mut comp_last)
}

/// The shared recurrence behind [`finish_times_with`] and [`compose`]: one
/// job of total size `load`, evaluated against carried link-occupancy and
/// compute-busy state (`link_free` / `comp_last`), which it updates in
/// place. With fresh state and `load == 1.0` this is bit-identical to the
/// historical single-job recurrence (multiplying by 1.0 is exact).
fn finish_times_scaled(
    net: &LinearNetwork,
    config: &MultiRoundConfig,
    alloc: &Allocation,
    load: f64,
    link_free: &mut [f64],
    comp_last: &mut [f64],
) -> Vec<Vec<f64>> {
    let n = net.len();
    let k = config.rounds;
    let share = 1.0 / k as f64;
    let received = alloc.received();
    // The root holds this job's entire load from the moment the job is
    // scheduled; every other processor must receive each installment
    // before computing it.
    let mut recv_end = vec![0.0f64; n];
    let mut comp_end = vec![vec![0.0f64; n]; k];
    for r in 0..k {
        for i in 0..n {
            if i == 0 {
                recv_end[0] = 0.0; // the root holds every round from t = 0
            } else {
                let amount = received[i] * share * load;
                if amount > EPSILON {
                    let start = link_free[i].max(recv_end[i - 1]);
                    let end = start + config.comm_startup + amount * net.z(i);
                    link_free[i] = end;
                    recv_end[i] = end;
                }
                // else: nothing ships this round; recv_end[i] keeps its
                // previous value (no new arrival).
            }
            let prev_comp = if r == 0 {
                comp_last[i]
            } else {
                comp_end[r - 1][i]
            };
            comp_end[r][i] = prev_comp.max(recv_end[i]) + alloc.alpha(i) * share * load * net.w(i);
        }
    }
    comp_last[..n].copy_from_slice(&comp_end[k - 1][..n]);
    comp_end
}

/// The makespan of the discrete schedule for a given allocation.
pub fn makespan_with(net: &LinearNetwork, config: &MultiRoundConfig, alloc: &Allocation) -> f64 {
    finish_times_with(net, config, alloc)
        .last()
        .expect("k >= 1")
        .iter()
        .copied()
        .fold(0.0, f64::max)
}

/// Optimize the total allocation for the discrete `k`-round schedule by
/// damped multiplicative equalization of finish times. Returns the best
/// allocation found and its exact makespan.
pub fn optimize_allocation(net: &LinearNetwork, config: &MultiRoundConfig) -> (Allocation, f64) {
    let n = net.len();
    // Start from the single-round optimum.
    let mut fractions = linear::solve(net).alloc.fractions().to_vec();
    let mut best = fractions.clone();
    let mut best_ms = makespan_with(net, config, &Allocation::new(fractions.clone()));
    for _ in 0..120 {
        let alloc = Allocation::new(fractions.clone());
        let finals = finish_times_with(net, config, &alloc);
        let finish = finals.last().expect("k >= 1");
        let ms = finish.iter().copied().fold(0.0, f64::max);
        if ms < best_ms {
            best_ms = ms;
            best = fractions.clone();
        }
        let mean = finish.iter().sum::<f64>() / n as f64;
        let spread = finish.iter().copied().fold(0.0f64, f64::max)
            - finish.iter().copied().fold(f64::INFINITY, f64::min);
        if spread < 1e-12 * mean.max(1.0) {
            break;
        }
        // Damped multiplicative update: nodes finishing late shed load,
        // nodes finishing early absorb it.
        let mut total = 0.0;
        for (i, f) in fractions.iter_mut().enumerate() {
            let ratio = (mean / finish[i].max(1e-300)).sqrt();
            *f = (*f * ratio).max(1e-12);
            total += *f;
        }
        for f in fractions.iter_mut() {
            *f /= total;
        }
    }
    (Allocation::new(best), best_ms)
}

/// The computed multi-round schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiRoundSchedule {
    /// Exact makespan of the discrete pipelined schedule.
    pub makespan: f64,
    /// Per-round, per-processor compute completion times
    /// (`compute_end[r][i]`).
    pub compute_end: Vec<Vec<f64>>,
    /// The total (all rounds) allocation per processor.
    pub total_alloc: Allocation,
    /// Number of rounds.
    pub rounds: usize,
}

/// Compute the optimized multi-round schedule.
pub fn schedule(net: &LinearNetwork, config: &MultiRoundConfig) -> MultiRoundSchedule {
    let (total_alloc, makespan) = if config.rounds == 1 && config.comm_startup == 0.0 {
        let sol = linear::solve(net);
        let ms = sol.makespan();
        (sol.alloc, ms)
    } else {
        optimize_allocation(net, config)
    };
    let compute_end = finish_times_with(net, config, &total_alloc);
    MultiRoundSchedule {
        makespan,
        compute_end,
        total_alloc,
        rounds: config.rounds,
    }
}

/// Makespan as a function of `k` over `1..=max_rounds` — the U-curve data
/// series.
pub fn round_sweep(net: &LinearNetwork, comm_startup: f64, max_rounds: usize) -> Vec<(usize, f64)> {
    (1..=max_rounds)
        .map(|k| {
            (
                k,
                schedule(net, &MultiRoundConfig::new(k, comm_startup)).makespan,
            )
        })
        .collect()
}

/// The best round count on `1..=max_rounds` and its makespan.
pub fn best_rounds(net: &LinearNetwork, comm_startup: f64, max_rounds: usize) -> (usize, f64) {
    round_sweep(net, comm_startup, max_rounds)
        .into_iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("max_rounds >= 1")
}

/// One job in a multi-job pipeline on a single chain: a divisible load of
/// size `load` (in units of the chain's unit workload) shipped in
/// `config.rounds` uniform installments.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelinedJob {
    /// Total load of this job, `> 0`.
    pub load: f64,
    /// Installment parameters for this job.
    pub config: MultiRoundConfig,
}

impl PipelinedJob {
    /// A job of size `load` with the given installment parameters.
    pub fn new(load: f64, config: MultiRoundConfig) -> Self {
        assert!(load > 0.0 && load.is_finite());
        Self { load, config }
    }
}

/// Per-job outcome inside a [`ComposedSchedule`].
#[derive(Debug, Clone, PartialEq)]
pub struct ComposedJob {
    /// Number of installments this job was shipped in.
    pub rounds: usize,
    /// The job's total (all-rounds) allocation, as unit-load fractions.
    pub total_alloc: Allocation,
    /// Time at which the last installment of this job finishes computing
    /// anywhere in the chain, measured from the start of the batch.
    pub finish: f64,
    /// Makespan this job would have if it ran alone (fresh links, idle
    /// processors) with the same allocation and installment parameters.
    pub standalone_makespan: f64,
}

/// A composed schedule for a queue of back-to-back jobs on one chain.
#[derive(Debug, Clone, PartialEq)]
pub struct ComposedSchedule {
    /// Per-job outcomes, in queue order.
    pub jobs: Vec<ComposedJob>,
    /// Finish time of the last job — the batch makespan.
    pub makespan: f64,
    /// The no-overlap baseline: the sum of the jobs' standalone makespans,
    /// i.e. what running each job to completion before starting the next
    /// would cost.
    pub sequential_makespan: f64,
}

/// Compose a queue of jobs on one chain into a single pipelined timeline.
///
/// Link-occupancy (`link_free`) and per-processor compute-busy times carry
/// over from job to job, so installment `r` of job `j+1` ships while the
/// tail installments of job `j` are still computing — but per-job
/// `recv_end` resets, because the root holds each job's entire load the
/// moment that job starts. Each job uses its own optimized allocation from
/// [`schedule`], scaled by its load (the recurrence is linear in shipped
/// bytes and compute seconds, so scaling is exact).
///
/// Composition never waits where the sequential baseline would not: with
/// `k = 1` the carried-state recurrence is the sequential timeline minus
/// the artificial "wait for the whole previous job" barrier, and the
/// recurrence is monotone in its carried state, so
/// `compose(k = 1).makespan ≤ Σ standalone one-shot makespans`.
pub fn compose(net: &LinearNetwork, jobs: &[PipelinedJob]) -> ComposedSchedule {
    assert!(!jobs.is_empty(), "compose needs at least one job");
    let n = net.len();
    let mut link_free = vec![0.0f64; n];
    let mut comp_last = vec![0.0f64; n];
    let mut out = Vec::with_capacity(jobs.len());
    let mut sequential = 0.0f64;
    let mut makespan = 0.0f64;
    // Back-to-back jobs usually share a config; reuse the optimized
    // allocation instead of re-running the equalizer per job.
    let mut cached: Option<(MultiRoundConfig, Allocation)> = None;
    for job in jobs {
        let alloc = match &cached {
            Some((cfg, alloc)) if *cfg == job.config => alloc.clone(),
            _ => {
                let alloc = schedule(net, &job.config).total_alloc;
                cached = Some((job.config, alloc.clone()));
                alloc
            }
        };
        let comp_end = finish_times_scaled(
            net,
            &job.config,
            &alloc,
            job.load,
            &mut link_free,
            &mut comp_last,
        );
        let last = comp_end.last().expect("k >= 1");
        // A job is done when every processor that received any of its load
        // has computed its final installment; idle processors carry stale
        // busy-times from earlier jobs and must not count.
        let mut finish = 0.0f64;
        for i in 0..n {
            if alloc.alpha(i) > 0.0 {
                finish = finish.max(last[i]);
            }
        }
        let mut fresh_links = vec![0.0f64; n];
        let mut fresh_comp = vec![0.0f64; n];
        let standalone_end = finish_times_scaled(
            net,
            &job.config,
            &alloc,
            job.load,
            &mut fresh_links,
            &mut fresh_comp,
        );
        let standalone = standalone_end
            .last()
            .expect("k >= 1")
            .iter()
            .copied()
            .fold(0.0, f64::max);
        sequential += standalone;
        makespan = makespan.max(finish);
        out.push(ComposedJob {
            rounds: job.config.rounds,
            total_alloc: alloc,
            finish,
            standalone_makespan: standalone,
        });
    }
    ComposedSchedule {
        jobs: out,
        makespan,
        sequential_makespan: sequential,
    }
}

/// The pipelining rule used by the per-chain job queue.
///
/// Compose the queue twice — once with the chain's best round count
/// `k* = best_rounds(net, comm_startup, max_rounds)` and once with `k = 1`
/// (single-installment jobs) — and keep whichever batch finishes first.
/// The `k = 1` candidate is the sequential timeline with the inter-job
/// barrier removed, so by monotonicity its makespan never exceeds the sum
/// of standalone one-shot solves; taking the minimum therefore guarantees
/// **pipelined ≤ sequential** on every input, while `k*` captures the
/// ramp-up savings whenever multiround genuinely helps.
///
/// The returned schedule's `sequential_makespan` is the one-shot baseline
/// (`k = 1` standalone jobs), regardless of which candidate won.
pub fn compose_best(
    net: &LinearNetwork,
    loads: &[f64],
    comm_startup: f64,
    max_rounds: usize,
) -> ComposedSchedule {
    assert!(!loads.is_empty(), "compose_best needs at least one job");
    let (k_star, _) = best_rounds(net, comm_startup, max_rounds);
    let with_k = |k: usize| -> Vec<PipelinedJob> {
        loads
            .iter()
            .map(|&l| PipelinedJob::new(l, MultiRoundConfig::new(k, comm_startup)))
            .collect()
    };
    let oneshot = compose(net, &with_k(1));
    let sequential = oneshot.sequential_makespan;
    let mut best = if k_star > 1 {
        let candidate = compose(net, &with_k(k_star));
        if candidate.makespan <= oneshot.makespan {
            candidate
        } else {
            oneshot
        }
    } else {
        oneshot
    };
    best.sequential_makespan = sequential;
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> LinearNetwork {
        // Slow links make pipelining worthwhile.
        LinearNetwork::from_rates(&[1.0, 1.0, 1.0, 1.0], &[0.8, 0.8, 0.8])
    }

    #[test]
    fn one_round_without_startup_matches_single_installment() {
        let net = net();
        let sched = schedule(&net, &MultiRoundConfig::new(1, 0.0));
        let single = linear::solve(&net);
        assert!((sched.makespan - single.makespan()).abs() < 1e-9);
    }

    #[test]
    fn recurrence_with_single_round_reproduces_eq_22() {
        // k = 1: the recurrence must equal the closed-form finish times.
        let net = net();
        let sol = linear::solve(&net);
        let cfg = MultiRoundConfig::new(1, 0.0);
        let finals = finish_times_with(&net, &cfg, &sol.alloc);
        let expected = crate::timing::finish_times(&net, &sol.alloc);
        for i in 0..net.len() {
            assert!((finals[0][i] - expected[i]).abs() < 1e-12, "P{i}");
        }
    }

    #[test]
    fn pipelining_helps_on_slow_links() {
        let net = net();
        let k1 = schedule(&net, &MultiRoundConfig::new(1, 0.0)).makespan;
        let k8 = schedule(&net, &MultiRoundConfig::new(8, 0.0)).makespan;
        assert!(k8 < k1 - 1e-4, "8 rounds {k8} vs 1 round {k1}");
    }

    #[test]
    fn optimizer_never_loses_to_single_round_split() {
        let net = net();
        for k in [2usize, 4, 16] {
            let cfg = MultiRoundConfig::new(k, 0.0);
            let single_split = linear::solve(&net).alloc;
            let naive = makespan_with(&net, &cfg, &single_split);
            let (_, optimized) = optimize_allocation(&net, &cfg);
            assert!(
                optimized <= naive + 1e-9,
                "k={k}: {optimized} vs naive {naive}"
            );
        }
    }

    #[test]
    fn with_startup_the_curve_is_u_shaped() {
        let net = net();
        let startup = 0.05;
        let sweep = round_sweep(&net, startup, 32);
        let (best_k, best_ms) = best_rounds(&net, startup, 32);
        assert!(best_k > 1, "some pipelining should pay: {sweep:?}");
        assert!(best_k < 32, "startup should cap the useful round count");
        assert!(sweep[0].1 > best_ms);
        assert!(sweep[31].1 > best_ms);
    }

    #[test]
    fn more_rounds_shift_load_to_the_tail() {
        let net = net();
        let k1 = schedule(&net, &MultiRoundConfig::new(1, 0.0));
        let k8 = schedule(&net, &MultiRoundConfig::new(8, 0.0));
        let m = net.last_index();
        assert!(
            k8.total_alloc.alpha(m) > k1.total_alloc.alpha(m) + 1e-6,
            "the terminal processor should absorb more load when it starts earlier: {} vs {}",
            k8.total_alloc.alpha(m),
            k1.total_alloc.alpha(m)
        );
    }

    #[test]
    fn rounds_complete_in_order_per_processor() {
        let net = net();
        let sched = schedule(&net, &MultiRoundConfig::new(5, 0.01));
        for i in 0..net.len() {
            for r in 1..5 {
                assert!(sched.compute_end[r][i] >= sched.compute_end[r - 1][i]);
            }
        }
    }

    #[test]
    fn total_load_is_preserved() {
        let net = net();
        for k in [1usize, 3, 7] {
            let sched = schedule(&net, &MultiRoundConfig::new(k, 0.01));
            sched.total_alloc.validate().unwrap();
        }
    }

    #[test]
    fn fast_links_gain_little_from_pipelining() {
        let fast = LinearNetwork::from_rates(&[1.0, 1.0, 1.0, 1.0], &[0.01, 0.01, 0.01]);
        let k1 = schedule(&fast, &MultiRoundConfig::new(1, 0.0)).makespan;
        let k8 = schedule(&fast, &MultiRoundConfig::new(8, 0.0)).makespan;
        assert!(
            (k1 - k8) / k1 < 0.05,
            "gain should be marginal: {k1} vs {k8}"
        );
    }

    #[test]
    fn makespan_bounded_below_by_aggregate_speed() {
        let net = net();
        let agg: f64 = net.rates_w().iter().map(|w| 1.0 / w).sum();
        for k in [1usize, 2, 8, 32] {
            let sched = schedule(&net, &MultiRoundConfig::new(k, 0.0));
            assert!(sched.makespan >= 1.0 / agg - 1e-9);
        }
    }

    #[test]
    fn heterogeneous_chain_also_improves() {
        let net = LinearNetwork::from_rates(&[1.2, 0.7, 2.0, 0.9], &[0.6, 0.9, 0.5]);
        let k1 = schedule(&net, &MultiRoundConfig::new(1, 0.0)).makespan;
        let k6 = schedule(&net, &MultiRoundConfig::new(6, 0.0)).makespan;
        assert!(k6 < k1, "{k6} vs {k1}");
    }

    #[test]
    fn compose_single_unit_job_matches_schedule() {
        let net = net();
        for (k, c) in [(1usize, 0.0), (4, 0.02), (8, 0.0)] {
            let cfg = MultiRoundConfig::new(k, c);
            let sched = schedule(&net, &cfg);
            let composed = compose(&net, &[PipelinedJob::new(1.0, cfg)]);
            assert_eq!(composed.jobs.len(), 1);
            assert!(
                (composed.makespan - sched.makespan).abs() < 1e-12,
                "k={k} c={c}: {} vs {}",
                composed.makespan,
                sched.makespan
            );
            assert!((composed.jobs[0].standalone_makespan - sched.makespan).abs() < 1e-12);
        }
    }

    #[test]
    fn composed_jobs_finish_in_queue_order() {
        let net = net();
        let cfg = MultiRoundConfig::new(4, 0.01);
        let jobs: Vec<PipelinedJob> = [1.0, 0.5, 2.0, 1.5]
            .iter()
            .map(|&l| PipelinedJob::new(l, cfg))
            .collect();
        let composed = compose(&net, &jobs);
        for w in composed.jobs.windows(2) {
            assert!(w[1].finish >= w[0].finish - 1e-12);
        }
        assert!((composed.makespan - composed.jobs.last().unwrap().finish).abs() < 1e-12);
    }

    #[test]
    fn composition_beats_the_sequential_baseline() {
        // With k = 1 the equalized allocation keeps the root busy for the
        // whole job, so plain overlap only ties the sequential baseline;
        // the strict win comes from compose_best picking k* > 1, which
        // shifts load off the root and shrinks every job in the batch.
        let net = net();
        let best = compose_best(&net, &[1.0, 1.0, 1.0, 1.0], 0.0, 16);
        assert!(
            best.makespan < best.sequential_makespan - 1e-4,
            "multiround pipelining should strictly help on slow links: {} vs {}",
            best.makespan,
            best.sequential_makespan
        );
    }

    #[test]
    fn compose_best_never_exceeds_one_shot_sequential() {
        for (w, z) in [
            (vec![1.0, 1.0, 1.0, 1.0], vec![0.8, 0.8, 0.8]),
            (vec![1.2, 0.7, 2.0, 0.9], vec![0.6, 0.9, 0.5]),
            (vec![1.0, 1.0], vec![0.01]),
        ] {
            let net = LinearNetwork::from_rates(&w, &z);
            for loads in [vec![1.0], vec![1.0, 1.0, 1.0], vec![0.25, 2.0, 0.5, 1.0]] {
                for startup in [0.0, 0.05] {
                    let best = compose_best(&net, &loads, startup, 16);
                    assert!(
                        best.makespan <= best.sequential_makespan + 1e-9,
                        "w={w:?} loads={loads:?} c={startup}: {} vs {}",
                        best.makespan,
                        best.sequential_makespan
                    );
                }
            }
        }
    }
}
