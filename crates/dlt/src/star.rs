//! Optimal divisible load scheduling on star (single-level tree) and bus
//! networks — the substrates of the companion mechanisms \[9, 14\] that the
//! paper cites as prior work, implemented here as baselines for the
//! cross-architecture comparison experiment (E10).
//!
//! Model: the root `P_0` holds the load, computes its own share through its
//! front-end, and transmits the children's shares sequentially in index
//! order over dedicated links (one-port). Child `i` receives its entire
//! share before computing. Finish times:
//!
//! * `T_0 = α_0 · w_0`
//! * `T_i = Σ_{k≤i} α_k z_k + α_i w_i`
//!
//! Equal finish times (the star analogue of Theorem 2.1) give the recursion
//! `α_i w_i = α_{i+1}(z_{i+1} + w_{i+1})`, anchored by
//! `α_0 w_0 = α_1 (z_1 + w_1)`, then normalized to sum to one.

use crate::model::{Allocation, StarNetwork, EPSILON};

/// Solution of the star scheduling problem.
#[derive(Debug, Clone, PartialEq)]
pub struct StarSolution {
    /// Global allocation: index 0 is the root, then children in
    /// distribution order.
    pub alloc: Allocation,
    /// The common finish time (makespan) for the unit load.
    pub makespan: f64,
}

/// Solve the star problem with every processor participating. Runs in O(m).
pub fn solve(net: &StarNetwork) -> StarSolution {
    let mut raw = Vec::with_capacity(net.len());
    raw.push(1.0f64);
    let mut prev_w = net.root().w;
    for (link, child) in net.children() {
        let ratio = prev_w / (link.z + child.w);
        let prev = *raw.last().expect("non-empty");
        raw.push(prev * ratio);
        prev_w = child.w;
    }
    let total: f64 = raw.iter().sum();
    let fractions: Vec<f64> = raw.iter().map(|r| r / total).collect();
    let makespan = fractions[0] * net.root().w;
    StarSolution {
        alloc: Allocation::new(fractions),
        makespan,
    }
}

/// Finish times of every processor in the star under an arbitrary
/// allocation (root first, then children in distribution order).
pub fn finish_times(net: &StarNetwork, alloc: &Allocation) -> Vec<f64> {
    assert_eq!(alloc.len(), net.len());
    let mut out = Vec::with_capacity(net.len());
    out.push(alloc.alpha(0) * net.root().w);
    let mut comm = 0.0;
    for (i, (link, child)) in net.children().iter().enumerate() {
        let a = alloc.alpha(i + 1);
        comm += a * link.z;
        if a > 0.0 {
            out.push(comm + a * child.w);
        } else {
            out.push(0.0);
        }
    }
    out
}

/// Makespan of the star under an arbitrary allocation.
pub fn makespan(net: &StarNetwork, alloc: &Allocation) -> f64 {
    finish_times(net, alloc).into_iter().fold(0.0, f64::max)
}

/// Spread of finish times over participating processors; zero at the
/// optimum.
pub fn participation_spread(net: &StarNetwork, alloc: &Allocation) -> f64 {
    let times = finish_times(net, alloc);
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (i, &t) in times.iter().enumerate() {
        if alloc.alpha(i) > EPSILON {
            lo = lo.min(t);
            hi = hi.max(t);
        }
    }
    if lo.is_infinite() {
        0.0
    } else {
        hi - lo
    }
}

/// The equivalent unit processing time of the whole star: its optimal
/// makespan under unit load. Used by the tree solver to collapse subtrees.
pub fn equivalent_time(net: &StarNetwork) -> f64 {
    if net.children().is_empty() {
        return net.root().w;
    }
    solve(net).makespan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StarNetwork;

    #[test]
    fn childless_star_gives_root_everything() {
        let net = StarNetwork::from_rates(&[2.0], &[]);
        let sol = solve(&net);
        assert_eq!(sol.alloc.alpha(0), 1.0);
        assert_eq!(sol.makespan, 2.0);
    }

    #[test]
    fn two_processor_star_matches_chain() {
        // A star with one child is exactly a 2-processor chain.
        let star = StarNetwork::from_rates(&[1.0, 1.0], &[1.0]);
        let sol = solve(&star);
        assert!((sol.alloc.alpha(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((sol.makespan - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn solution_is_feasible() {
        let net = StarNetwork::from_rates(&[1.0, 2.0, 0.7, 3.0], &[0.1, 0.4, 0.2]);
        let sol = solve(&net);
        sol.alloc.validate().unwrap();
        assert!(sol.alloc.fractions().iter().all(|&a| a > 0.0));
    }

    #[test]
    fn equal_finish_times_at_optimum() {
        let net = StarNetwork::from_rates(&[1.0, 2.0, 0.7, 3.0, 1.2], &[0.1, 0.4, 0.2, 0.3]);
        let sol = solve(&net);
        assert!(participation_spread(&net, &sol.alloc) < 1e-12);
    }

    #[test]
    fn makespan_equals_root_term() {
        let net = StarNetwork::from_rates(&[1.3, 0.9, 2.2], &[0.15, 0.25]);
        let sol = solve(&net);
        assert!((sol.makespan - sol.alloc.alpha(0) * 1.3).abs() < 1e-12);
        assert!((sol.makespan - makespan(&net, &sol.alloc)).abs() < 1e-12);
    }

    #[test]
    fn bus_children_with_equal_rates_get_equal_load() {
        let net = StarNetwork::bus(1.0, &[2.0, 2.0, 2.0], 0.2);
        let sol = solve(&net);
        // Sequential distribution: with equal w and z, later children get
        // strictly less (α_{i+1} = α_i · w/(z+w) < α_i).
        assert!(sol.alloc.alpha(2) < sol.alloc.alpha(1));
        assert!(sol.alloc.alpha(3) < sol.alloc.alpha(2));
    }

    #[test]
    fn faster_link_child_receives_more() {
        let fast = StarNetwork::from_rates(&[1.0, 1.0], &[0.1]);
        let slow = StarNetwork::from_rates(&[1.0, 1.0], &[2.0]);
        assert!(solve(&fast).alloc.alpha(1) > solve(&slow).alloc.alpha(1));
    }

    #[test]
    fn more_children_never_hurt() {
        let small = StarNetwork::from_rates(&[1.0, 2.0], &[0.3]);
        let big = StarNetwork::from_rates(&[1.0, 2.0, 2.0], &[0.3, 0.3]);
        assert!(solve(&big).makespan <= solve(&small).makespan + 1e-12);
    }

    #[test]
    fn equivalent_time_of_leaf_is_its_rate() {
        let net = StarNetwork::from_rates(&[3.5], &[]);
        assert_eq!(equivalent_time(&net), 3.5);
    }

    #[test]
    fn zero_allocation_child_has_zero_finish_time() {
        let net = StarNetwork::from_rates(&[1.0, 1.0, 1.0], &[0.5, 0.5]);
        let alloc = Allocation::new(vec![0.7, 0.3, 0.0]);
        let t = finish_times(&net, &alloc);
        assert_eq!(t[2], 0.0);
    }
}
