//! Linear networks with *interior* load origination — the variant the paper
//! defines in §2 but leaves to future work (§6). Provided as an extension
//! and used by the cross-architecture experiment (E10).
//!
//! The root `P_r` sits strictly inside the chain with a left arm
//! `P_{r-1} … P_0` and a right arm `P_{r+1} … P_m`. Each arm, viewed from
//! the root, is itself a boundary-origination chain, so it collapses into a
//! single equivalent processor (eq. 2.4). The root then faces a two-child
//! star; the one-port constraint makes the service *order* matter, so both
//! orders are evaluated and the better one is kept. Arm-internal fractions
//! are recovered by scaling each arm's boundary-chain solution by the load
//! the arm receives (exact under the linear cost model).

use crate::linear;
use crate::model::{Allocation, LinearNetwork, Link, Processor, StarNetwork};
use crate::star;

/// A linear network with the load originating at an interior processor.
#[derive(Debug, Clone, PartialEq)]
pub struct InteriorNetwork {
    chain: LinearNetwork,
    root: usize,
}

/// Which arm the root serves first under the one-port constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceOrder {
    /// Left arm first, then right.
    LeftFirst,
    /// Right arm first, then left.
    RightFirst,
}

impl InteriorNetwork {
    /// Wrap a chain with its root index. The root must be strictly interior
    /// (`0 < root < m`); use the boundary solver otherwise.
    pub fn new(chain: LinearNetwork, root: usize) -> Self {
        assert!(
            root > 0 && root < chain.last_index(),
            "root {root} is not interior in a {}-processor chain",
            chain.len()
        );
        Self { chain, root }
    }

    /// The underlying chain (`P_0 … P_m` in physical order).
    pub fn chain(&self) -> &LinearNetwork {
        &self.chain
    }

    /// The root index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// The left arm as a boundary chain whose root is `P_{r-1}` (the
    /// processor adjacent to the load origin), extending to `P_0`.
    pub fn left_arm(&self) -> LinearNetwork {
        let w: Vec<f64> = (0..self.root).rev().map(|i| self.chain.w(i)).collect();
        let z: Vec<f64> = (1..self.root).rev().map(|j| self.chain.z(j)).collect();
        LinearNetwork::from_rates(&w, &z)
    }

    /// The right arm as a boundary chain whose root is `P_{r+1}`.
    pub fn right_arm(&self) -> LinearNetwork {
        let m = self.chain.last_index();
        let w: Vec<f64> = (self.root + 1..=m).map(|i| self.chain.w(i)).collect();
        let z: Vec<f64> = (self.root + 2..=m).map(|j| self.chain.z(j)).collect();
        LinearNetwork::from_rates(&w, &z)
    }
}

/// Solution of the interior-origination problem.
#[derive(Debug, Clone, PartialEq)]
pub struct InteriorSolution {
    /// Global allocation in *physical* order `P_0 … P_m`.
    pub alloc: Allocation,
    /// Achieved makespan.
    pub makespan: f64,
    /// The service order that won.
    pub order: ServiceOrder,
}

/// Solve the interior problem, evaluating both service orders.
pub fn solve(net: &InteriorNetwork) -> InteriorSolution {
    let left = solve_with_order(net, ServiceOrder::LeftFirst);
    let right = solve_with_order(net, ServiceOrder::RightFirst);
    if left.makespan <= right.makespan {
        left
    } else {
        right
    }
}

/// Solve the interior problem with a fixed service order.
pub fn solve_with_order(net: &InteriorNetwork, order: ServiceOrder) -> InteriorSolution {
    let left_arm = net.left_arm();
    let right_arm = net.right_arm();
    let w_left = linear::equivalent_time(&left_arm);
    let w_right = linear::equivalent_time(&right_arm);
    let z_left = net.chain.z(net.root); // link ℓ_r joins P_{r-1} and P_r
    let z_right = net.chain.z(net.root + 1);

    // Two-child star at the root, children in service order.
    let (first, second) = match order {
        ServiceOrder::LeftFirst => ((z_left, w_left), (z_right, w_right)),
        ServiceOrder::RightFirst => ((z_right, w_right), (z_left, w_left)),
    };
    let star_net = StarNetwork::new(
        Processor::new(net.chain.w(net.root)),
        vec![
            (Link::new(first.0), Processor::new(first.1)),
            (Link::new(second.0), Processor::new(second.1)),
        ],
    );
    let star_sol = star::solve(&star_net);
    let (left_amount, right_amount) = match order {
        ServiceOrder::LeftFirst => (star_sol.alloc.alpha(1), star_sol.alloc.alpha(2)),
        ServiceOrder::RightFirst => (star_sol.alloc.alpha(2), star_sol.alloc.alpha(1)),
    };

    // Expand arm-internal allocations (scaled boundary-chain solutions).
    let left_internal = linear::solve(&left_arm).alloc;
    let right_internal = linear::solve(&right_arm).alloc;

    let m = net.chain.last_index();
    let mut fractions = vec![0.0; m + 1];
    fractions[net.root] = star_sol.alloc.alpha(0);
    // left arm order: arm index 0 is P_{r-1}, arm index r-1 is P_0
    for (arm_idx, &f) in left_internal.fractions().iter().enumerate() {
        fractions[net.root - 1 - arm_idx] = f * left_amount;
    }
    for (arm_idx, &f) in right_internal.fractions().iter().enumerate() {
        fractions[net.root + 1 + arm_idx] = f * right_amount;
    }
    InteriorSolution {
        alloc: Allocation::new(fractions),
        makespan: star_sol.makespan,
        order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symmetric() -> InteriorNetwork {
        // P0 -0.3- P1 -0.3- P2(root) -0.3- P3 -0.3- P4, all w = 1
        InteriorNetwork::new(LinearNetwork::homogeneous(5, 1.0, 0.3), 2)
    }

    #[test]
    #[should_panic(expected = "not interior")]
    fn rejects_boundary_root() {
        InteriorNetwork::new(LinearNetwork::homogeneous(3, 1.0, 0.3), 0);
    }

    #[test]
    fn arms_are_extracted_in_root_outward_order() {
        let chain = LinearNetwork::from_rates(&[1.0, 2.0, 3.0, 4.0, 5.0], &[0.1, 0.2, 0.3, 0.4]);
        let net = InteriorNetwork::new(chain, 2);
        let left = net.left_arm();
        assert_eq!(left.rates_w(), vec![2.0, 1.0]); // P1 then P0
        assert_eq!(left.rates_z(), vec![0.1]); // the P1–P0 link is ℓ_1
        let right = net.right_arm();
        assert_eq!(right.rates_w(), vec![4.0, 5.0]); // P3 then P4
        assert_eq!(right.rates_z(), vec![0.4]); // the P3–P4 link is ℓ_4
    }

    #[test]
    fn solution_is_feasible() {
        let sol = solve(&symmetric());
        sol.alloc.validate().unwrap();
        assert!(sol.alloc.fractions().iter().all(|&a| a > 0.0));
    }

    #[test]
    fn symmetric_network_orders_tie() {
        let net = symmetric();
        let l = solve_with_order(&net, ServiceOrder::LeftFirst);
        let r = solve_with_order(&net, ServiceOrder::RightFirst);
        assert!((l.makespan - r.makespan).abs() < 1e-12);
        // And the winning allocation mirrors: P1 under LeftFirst equals P3
        // under RightFirst.
        assert!((l.alloc.alpha(1) - r.alloc.alpha(3)).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_network_prefers_heavier_side_first() {
        // Right arm much faster: serving it first should win (or at least
        // the solver must pick the min of both).
        let chain = LinearNetwork::from_rates(&[5.0, 5.0, 1.0, 0.3, 0.3], &[0.2, 0.2, 0.2, 0.2]);
        let net = InteriorNetwork::new(chain, 2);
        let sol = solve(&net);
        let l = solve_with_order(&net, ServiceOrder::LeftFirst);
        let r = solve_with_order(&net, ServiceOrder::RightFirst);
        assert!((sol.makespan - l.makespan.min(r.makespan)).abs() < 1e-15);
    }

    #[test]
    fn interior_beats_boundary_on_symmetric_chain() {
        // Originating in the middle shortens the longest communication path,
        // so the makespan should not be worse than boundary origination.
        let chain = LinearNetwork::homogeneous(5, 1.0, 0.3);
        let boundary = linear::solve(&chain).makespan();
        let interior = solve(&InteriorNetwork::new(chain, 2)).makespan;
        assert!(interior <= boundary + 1e-12);
    }

    #[test]
    fn root_fraction_is_largest_for_homogeneous() {
        let sol = solve(&symmetric());
        let root_alpha = sol.alloc.alpha(2);
        for i in [0usize, 1, 3, 4] {
            assert!(root_alpha >= sol.alloc.alpha(i));
        }
    }
}
