//! Equivalent-processor reduction machinery (Figure 3, eqs. 2.3–2.4).
//!
//! *Reduction* collapses a connected segment of the chain into a single
//! *equivalent processor* whose unit processing time `w̄` equals the
//! makespan the segment exhibits when handed a unit load in isolation
//! (eq. 2.3; under the optimal internal allocation this is the common finish
//! time of every member, eq. 2.4).
//!
//! This module exposes the reduction both as a one-shot segment collapse and
//! as an explicit step-by-step trace (useful for the Figure 3 experiment and
//! for teaching material), and provides the key structural lemmas as
//! runtime-checkable predicates:
//!
//! * collapsing the two farthest processors repeatedly (Algorithm 1's order)
//!   and collapsing any suffix first then continuing give identical results;
//! * replacing a suffix by its equivalent processor leaves the optimal
//!   allocation of the *prefix* unchanged.

use crate::linear;
use crate::model::{LinearNetwork, Link, Processor};

/// One step in a reduction trace: processors `index` and `index + 1` of the
/// *current* (partially reduced) chain were collapsed.
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionStep {
    /// Index of the front processor of the collapsed pair within the chain
    /// as it existed before this step.
    pub index: usize,
    /// Local fraction `α̂` retained by the front processor of the pair.
    pub alpha_hat: f64,
    /// Equivalent unit processing time `w̄` of the merged pair.
    pub w_bar: f64,
    /// The chain after the step.
    pub network: LinearNetwork,
}

/// A full reduction trace from an `n`-processor chain down to a single
/// equivalent processor.
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionTrace {
    /// The original network.
    pub original: LinearNetwork,
    /// The sequence of collapse steps (length `n − 1`).
    pub steps: Vec<ReductionStep>,
}

impl ReductionTrace {
    /// The final equivalent unit processing time of the whole chain.
    pub fn equivalent_time(&self) -> f64 {
        match self.steps.last() {
            Some(step) => step.network.w(0),
            None => self.original.w(0),
        }
    }
}

/// Collapse the farthest pair of the chain once: `P_{n-2}` and `P_{n-1}`
/// become a single equivalent processor (Figure 3 with `i = n-2`).
///
/// # Panics
/// Panics if the chain has fewer than two processors.
pub fn collapse_last_pair(net: &LinearNetwork) -> ReductionStep {
    let n = net.len();
    assert!(n >= 2, "need at least two processors to reduce");
    let i = n - 2;
    let (alpha_hat, w_bar) = linear::reduce_pair(net.w(i), net.z(i + 1), net.w(i + 1));
    let mut processors: Vec<Processor> = net.processors()[..i].to_vec();
    processors.push(Processor::new(w_bar));
    let links: Vec<Link> = net.links()[..i].to_vec();
    ReductionStep {
        index: i,
        alpha_hat,
        w_bar,
        network: LinearNetwork::new(processors, links),
    }
}

/// Reduce the whole chain to a single equivalent processor, recording every
/// step (Algorithm 1's reduction order: farthest pair first).
pub fn reduce_fully(net: &LinearNetwork) -> ReductionTrace {
    let mut steps = Vec::with_capacity(net.len().saturating_sub(1));
    let mut current = net.clone();
    while current.len() > 1 {
        let step = collapse_last_pair(&current);
        current = step.network.clone();
        steps.push(step);
    }
    ReductionTrace {
        original: net.clone(),
        steps,
    }
}

/// Replace the suffix `P_i … P_m` of the chain by a single equivalent
/// processor, yielding an `(i+1)`-processor chain whose last member has rate
/// `w̄_i`. The links `ℓ_1 … ℓ_i` are preserved.
pub fn collapse_suffix(net: &LinearNetwork, i: usize) -> LinearNetwork {
    assert!(i < net.len());
    let w_bar = linear::equivalent_time(&net.suffix(i));
    let mut processors: Vec<Processor> = net.processors()[..i].to_vec();
    processors.push(Processor::new(w_bar));
    let links: Vec<Link> = net.links()[..i].to_vec();
    LinearNetwork::new(processors, links)
}

/// Structural check: the equivalent time of the collapsed network equals the
/// equivalent time of the original (reduction preserves the makespan).
pub fn reduction_preserves_makespan(net: &LinearNetwork, i: usize, tol: f64) -> bool {
    let collapsed = collapse_suffix(net, i);
    (linear::equivalent_time(&collapsed) - linear::equivalent_time(net)).abs() <= tol
}

/// Structural check: collapsing a suffix leaves the optimal *prefix*
/// allocation unchanged — the first `i` global fractions of the collapsed
/// network equal those of the original.
pub fn reduction_preserves_prefix_allocation(net: &LinearNetwork, i: usize, tol: f64) -> bool {
    let full = linear::solve(net);
    let collapsed = linear::solve(&collapse_suffix(net, i));
    (0..i).all(|k| (full.alloc.alpha(k) - collapsed.alloc.alpha(k)).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::makespan;

    fn sample() -> LinearNetwork {
        LinearNetwork::from_rates(&[1.0, 2.0, 0.5, 4.0], &[0.2, 0.1, 0.7])
    }

    #[test]
    fn collapse_last_pair_shrinks_by_one() {
        let net = sample();
        let step = collapse_last_pair(&net);
        assert_eq!(step.network.len(), 3);
        assert_eq!(step.index, 2);
        assert_eq!(step.network.w(0), 1.0);
        assert_eq!(step.network.w(1), 2.0);
    }

    #[test]
    fn figure3_pair_equivalent_matches_segment_makespan() {
        // w̄ of the collapsed pair equals the makespan of the isolated pair.
        let net = sample();
        let step = collapse_last_pair(&net);
        let pair = net.segment(2, 3);
        let sol = linear::solve(&pair);
        assert!((step.w_bar - sol.makespan()).abs() < 1e-12);
        assert!((step.w_bar - makespan(&pair, &sol.alloc)).abs() < 1e-12);
    }

    #[test]
    fn full_trace_has_n_minus_1_steps() {
        let net = sample();
        let trace = reduce_fully(&net);
        assert_eq!(trace.steps.len(), 3);
        assert_eq!(trace.steps.last().unwrap().network.len(), 1);
    }

    #[test]
    fn trace_equivalent_matches_direct_solver() {
        let net = sample();
        let trace = reduce_fully(&net);
        assert!((trace.equivalent_time() - linear::equivalent_time(&net)).abs() < 1e-12);
    }

    #[test]
    fn trace_on_singleton_is_empty() {
        let net = LinearNetwork::homogeneous(1, 2.0, 0.0);
        let trace = reduce_fully(&net);
        assert!(trace.steps.is_empty());
        assert_eq!(trace.equivalent_time(), 2.0);
    }

    #[test]
    fn collapse_suffix_preserves_makespan_everywhere() {
        let net = sample();
        for i in 0..net.len() {
            assert!(reduction_preserves_makespan(&net, i, 1e-12), "suffix {i}");
        }
    }

    #[test]
    fn collapse_suffix_preserves_prefix_allocation() {
        let net = sample();
        for i in 0..net.len() {
            assert!(
                reduction_preserves_prefix_allocation(&net, i, 1e-12),
                "suffix {i}"
            );
        }
    }

    #[test]
    fn collapse_suffix_zero_yields_single_equivalent() {
        let net = sample();
        let collapsed = collapse_suffix(&net, 0);
        assert_eq!(collapsed.len(), 1);
        assert!((collapsed.w(0) - linear::equivalent_time(&net)).abs() < 1e-12);
    }

    #[test]
    fn reduction_is_order_independent() {
        // Collapsing the suffix at any cut, then fully reducing, matches the
        // far-end-first order of Algorithm 1.
        let net = LinearNetwork::from_rates(&[0.9, 1.7, 2.3, 0.6, 1.1], &[0.3, 0.15, 0.2, 0.4]);
        let direct = reduce_fully(&net).equivalent_time();
        for cut in 1..net.len() {
            let partial = collapse_suffix(&net, cut);
            let via_cut = reduce_fully(&partial).equivalent_time();
            assert!(
                (direct - via_cut).abs() < 1e-12,
                "cut={cut}: {direct} vs {via_cut}"
            );
        }
    }

    #[test]
    fn equivalent_processor_is_faster_than_both_members() {
        // The merged pair outperforms either member alone.
        let step = collapse_last_pair(&LinearNetwork::from_rates(&[1.0, 2.0], &[0.1]));
        assert!(step.w_bar < 1.0);
        assert!(step.w_bar < 2.0);
    }

    #[test]
    fn alpha_hat_in_unit_interval() {
        let net = sample();
        let trace = reduce_fully(&net);
        for s in &trace.steps {
            assert!(s.alpha_hat > 0.0 && s.alpha_hat < 1.0);
        }
    }
}
