//! # `dlt` — Divisible Load Theory solvers
//!
//! The scheduling substrate of the DLS-LBL reproduction (Carroll & Grosu,
//! *"A Strategyproof Mechanism for Scheduling Divisible Loads in Linear
//! Networks"*, IPPS 2007). A *divisible load* is a workload that can be
//! split into arbitrarily small fractions, each requiring identical
//! processing; DLT asks how to split a unit load across networked
//! processors so that the overall finish time (makespan) is minimized.
//!
//! ## Modules
//!
//! * [`model`] — processors, links, networks, allocations.
//! * [`linear`] — the paper's Algorithm 1 (LINEAR BOUNDARY-LINEAR): the
//!   optimal chain schedule via equivalent-processor reduction
//!   (`linear::reference` is the frozen bit-identity oracle).
//! * [`batch`] — the struct-of-arrays batch solver core (`solve_many`,
//!   `solve_all_suffixes`): amortizes thousands of chains per call,
//!   bit-identical to the scalar solver by construction.
//! * [`baseline`] — an independent bisection solver used as an oracle.
//! * [`reduction`] — explicit reduction traces (Figure 3) and structural
//!   checks.
//! * [`timing`] — finish times (eqs. 2.1–2.2), makespans, analytic Gantt
//!   schedules (Figure 2).
//! * [`star`], [`tree`], [`interior`] — companion architectures (bus/star
//!   \[14\], tree \[9\], interior origination §6) for cross-architecture
//!   experiments.
//! * [`sequencing`], [`seqsearch`] — service-order analysis: the star
//!   sequencing result, and budget-guarded exhaustive + seeded local
//!   search over chain/tree order spaces.
//! * [`closed_form`] — hand-derived formulas cross-checking the solvers.
//! * [`optimal`] — perturbation probes and the monotonicity lemmas that
//!   power the strategyproofness proof.
//! * [`exact`] — arbitrary-precision rational arithmetic and an exact
//!   solver for bit-for-bit verification of Theorem 2.1.
//!
//! ## Quick example
//!
//! ```
//! use dlt::model::LinearNetwork;
//!
//! // Three processors in a chain, the load enters at P0.
//! let net = LinearNetwork::from_rates(&[1.0, 2.0, 1.5], &[0.2, 0.3]);
//! let sol = dlt::linear::solve(&net);
//! assert!(sol.alloc.validate().is_ok());
//! // Theorem 2.1: everyone finishes at the same instant.
//! let spread = dlt::timing::participation_spread(&net, &sol.alloc);
//! assert!(spread < 1e-12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Parallel-array indexing is idiomatic throughout this numeric code.
#![allow(clippy::needless_range_loop)]

pub mod affine;
pub mod baseline;
pub mod batch;
pub mod closed_form;
pub mod exact;
pub mod interior;
pub mod linear;
pub mod model;
pub mod multiround;
pub mod optimal;
pub mod reduction;
pub mod seqsearch;
pub mod sequencing;
pub mod star;
pub mod timing;
pub mod tree;

pub use linear::{solve as solve_linear, LinearSolution};
pub use model::{
    Allocation, LinearNetwork, Link, LocalAllocation, Processor, StarNetwork, TreeNode,
};
pub use timing::{finish_time, finish_times, makespan, ChainSchedule};
