//! Hand-derived closed forms used as independent cross-checks on the
//! recursive solver.
//!
//! * Fully expanded polynomial formulas for the optimal allocation on 2- and
//!   3-processor chains (derived by eliminating the recursion of eq. 2.7 by
//!   hand — they share no code path with [`crate::linear::solve`]).
//! * The fixed point of the homogeneous reduction map: for an infinitely
//!   long chain with uniform rates `(w, z)`, the equivalent time satisfies
//!   `w̄ = w(w̄+z)/(w+w̄+z)`, i.e. `w̄² + z·w̄ − w·z = 0`, giving
//!   `w̄* = (−z + √(z² + 4wz)) / 2`.

use crate::model::Allocation;

/// Optimal allocation of a 2-processor chain `(w0) --z1-- (w1)`:
/// `α_0 = (w1 + z1) / (w0 + w1 + z1)`.
pub fn two_processor(w0: f64, w1: f64, z1: f64) -> Allocation {
    let denom = w0 + w1 + z1;
    Allocation::new(vec![(w1 + z1) / denom, w0 / denom])
}

/// Optimal makespan of the 2-processor chain: `w0 (w1 + z1) / (w0+w1+z1)`.
pub fn two_processor_makespan(w0: f64, w1: f64, z1: f64) -> f64 {
    w0 * (w1 + z1) / (w0 + w1 + z1)
}

/// Optimal allocation of a 3-processor chain, fully expanded:
///
/// ```text
/// N  = w1·w2 + w1·z2 + z1·(w1 + w2 + z2)
/// D  = w0·(w1 + w2 + z2) + N
/// α0 = N / D
/// ```
/// and the tail splits the remainder `1 − α0` in the ratio
/// `(w2 + z2) : w1` (the 2-processor rule applied to `P_1, P_2`).
pub fn three_processor(w0: f64, w1: f64, w2: f64, z1: f64, z2: f64) -> Allocation {
    let t1 = w2 + z2;
    let n = w1 * t1 + z1 * (w1 + t1);
    let d = w0 * (w1 + t1) + n;
    let a0 = n / d;
    let rest = 1.0 - a0;
    let a1 = rest * t1 / (w1 + t1);
    let a2 = rest * w1 / (w1 + t1);
    Allocation::new(vec![a0, a1, a2])
}

/// The fixed point `w̄*` of the homogeneous reduction map: the equivalent
/// unit processing time of an arbitrarily long uniform chain with processor
/// rate `w` and link rate `z`.
///
/// For `z = 0` the map has fixed point 0 (infinitely many free helpers
/// absorb everything).
pub fn homogeneous_fixed_point(w: f64, z: f64) -> f64 {
    assert!(w > 0.0 && z >= 0.0);
    0.5 * (-z + (z * z + 4.0 * w * z).sqrt())
}

/// Saturation profile of a homogeneous chain: equivalent time of the
/// `n`-processor uniform chain for `n = 1 ..= max_n`. Decreases
/// monotonically towards [`homogeneous_fixed_point`]; used by the E10
/// experiment to show where adding processors stops paying.
#[derive(Debug, Clone, PartialEq)]
pub struct SaturationProfile {
    /// Processor rate `w`.
    pub w: f64,
    /// Link rate `z`.
    pub z: f64,
    /// `profile[k]` is the equivalent time of the `(k+1)`-processor chain.
    pub profile: Vec<f64>,
    /// The infinite-chain limit.
    pub fixed_point: f64,
}

/// Compute the saturation profile up to `max_n` processors.
pub fn saturation_profile(w: f64, z: f64, max_n: usize) -> SaturationProfile {
    assert!(max_n >= 1);
    let mut profile = Vec::with_capacity(max_n);
    let mut w_bar = w; // single processor
    profile.push(w_bar);
    for _ in 1..max_n {
        // prepend one more processor at the head of the chain
        let tail = w_bar + z;
        w_bar = w * tail / (w + tail);
        profile.push(w_bar);
    }
    SaturationProfile {
        w,
        z,
        profile,
        fixed_point: homogeneous_fixed_point(w, z),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear;
    use crate::model::LinearNetwork;

    #[test]
    fn two_processor_matches_solver() {
        for (w0, w1, z1) in [(1.0, 1.0, 1.0), (2.0, 0.5, 0.1), (0.3, 4.0, 2.0)] {
            let cf = two_processor(w0, w1, z1);
            let sol = linear::solve(&LinearNetwork::from_rates(&[w0, w1], &[z1]));
            assert!((cf.alpha(0) - sol.alloc.alpha(0)).abs() < 1e-14);
            assert!((cf.alpha(1) - sol.alloc.alpha(1)).abs() < 1e-14);
            assert!((two_processor_makespan(w0, w1, z1) - sol.makespan()).abs() < 1e-14);
        }
    }

    #[test]
    fn three_processor_matches_solver() {
        for (w0, w1, w2, z1, z2) in [
            (1.0, 1.0, 1.0, 1.0, 1.0),
            (2.0, 0.5, 1.5, 0.1, 0.4),
            (0.7, 3.0, 0.2, 0.9, 0.05),
        ] {
            let cf = three_processor(w0, w1, w2, z1, z2);
            let sol = linear::solve(&LinearNetwork::from_rates(&[w0, w1, w2], &[z1, z2]));
            for i in 0..3 {
                assert!(
                    (cf.alpha(i) - sol.alloc.alpha(i)).abs() < 1e-13,
                    "α_{i}: {} vs {}",
                    cf.alpha(i),
                    sol.alloc.alpha(i)
                );
            }
        }
    }

    #[test]
    fn fixed_point_satisfies_reduction_equation() {
        for (w, z) in [(1.0, 1.0), (2.0, 0.3), (0.5, 5.0)] {
            let fp = homogeneous_fixed_point(w, z);
            let mapped = w * (fp + z) / (w + fp + z);
            assert!((fp - mapped).abs() < 1e-12, "w={w} z={z}");
        }
    }

    #[test]
    fn fixed_point_zero_link_is_zero() {
        assert_eq!(homogeneous_fixed_point(1.0, 0.0), 0.0);
    }

    #[test]
    fn long_chain_converges_to_fixed_point() {
        let w = 1.0;
        let z = 0.25;
        let fp = homogeneous_fixed_point(w, z);
        let net = LinearNetwork::homogeneous(400, w, z);
        let eq = linear::equivalent_time(&net);
        assert!((eq - fp).abs() < 1e-9, "chain eq {eq} vs fixed point {fp}");
    }

    #[test]
    fn saturation_profile_is_monotone_decreasing() {
        let prof = saturation_profile(1.0, 0.2, 50);
        for pair in prof.profile.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-15);
        }
        assert!(*prof.profile.last().unwrap() >= prof.fixed_point - 1e-12);
    }

    #[test]
    fn saturation_profile_matches_solver_at_each_length() {
        let prof = saturation_profile(1.3, 0.4, 12);
        for (k, &v) in prof.profile.iter().enumerate() {
            let net = LinearNetwork::homogeneous(k + 1, 1.3, 0.4);
            assert!(
                (linear::equivalent_time(&net) - v).abs() < 1e-12,
                "n={}",
                k + 1
            );
        }
    }
}
