//! Batch solver core: struct-of-arrays, zero-allocation solving of many
//! chains per call, plus the all-suffixes sweep that powers the mechanism's
//! per-agent counterfactuals.
//!
//! ## The bit-identity contract
//!
//! Every number this module returns is **bit-identical** to what the frozen
//! scalar solver [`crate::linear::reference`] produces for the same chain:
//! the kernels perform exactly the same floating-point operations in exactly
//! the same order *per lane* as the scalar recursion. Vectorization happens
//! **across chains** (independent lanes of a length-cohort laid out
//! contiguously so the inner loops auto-vectorize), never across the
//! sequential `w̄` recurrence of a single chain — reassociating that
//! recurrence would change results. This is what lets the sweep binaries,
//! the serving layer's cold-solve path and the fault runners' residual
//! re-solves all route through this core without perturbing a single byte of
//! any report.
//!
//! ## Layout
//!
//! [`solve_many`] groups the input chains into equal-length cohorts and
//! transposes each cohort into step-major lanes (`buf[step * k + lane]`), so
//! the backward reduction sweep (eqs. 2.4/2.7) and the forward unroll
//! (eqs. 2.5–2.6) are branch-free loops over contiguous memory. Results land
//! in flat arenas ([`BatchSolution`]) indexed by per-chain offsets; with a
//! reused [`BatchScratch`] and output, steady-state solving allocates
//! nothing.
//!
//! [`solve_all_suffixes`] exploits that the backward recursion for suffix
//! `P_i … P_m` computes values that do not depend on `i`: one O(m) sweep
//! yields the front local fraction, the solve-style `w̄_i` *and* the
//! `equivalent_time`-style `w̄_i` (a distinct FP operation order — see
//! [`crate::linear::reference::equivalent_time`]) of **every** suffix at
//! once. `mechanism::payment` uses it to settle a whole bid profile in O(m)
//! instead of the former O(m²) per-agent `solve_suffix` loop.

use crate::linear::LinearSolution;
use crate::model::{LinearNetwork, LocalAllocation};
use std::cell::RefCell;

/// Maximum lanes per kernel invocation. Cohorts wider than this are split
/// into tiles so the five step-major lane buffers stay cache-resident
/// (`TILE` lanes × chain length × 5 arrays of f64 ≈ 40 KiB at length 16);
/// an unbounded cohort at batch ≈ 32k spills to DRAM and loses to the
/// scalar loop. Tiling only changes *which* lanes share an invocation —
/// never the per-lane FP op order — so bit-identity is unaffected.
const TILE: usize = 64;

/// Reusable workspace for [`solve_many_into`]. Holds the cohort ordering and
/// the step-major lane buffers; all of it is retained between calls so a
/// warm scratch performs no heap allocation.
#[derive(Debug, Default, Clone)]
pub struct BatchScratch {
    /// Chain indices sorted by (length, input index) — cohort grouping.
    order: Vec<u32>,
    /// Step-major processor rates of the current cohort.
    lane_w: Vec<f64>,
    /// Step-major link rates of the current cohort.
    lane_z: Vec<f64>,
    /// Step-major local fractions of the current cohort.
    lane_ah: Vec<f64>,
    /// Step-major equivalent times of the current cohort.
    lane_wbar: Vec<f64>,
    /// Step-major global fractions of the current cohort.
    lane_alloc: Vec<f64>,
    /// Per-lane carried product `Π(1-α̂)` of the forward unroll.
    carried: Vec<f64>,
}

impl BatchScratch {
    /// A fresh (empty) workspace.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Flat struct-of-arrays output of [`solve_many`]: chain `i` owns the arena
/// range `offsets[i] .. offsets[i + 1]` of each array.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct BatchSolution {
    offsets: Vec<usize>,
    alpha_hat: Vec<f64>,
    w_bar: Vec<f64>,
    alloc: Vec<f64>,
}

impl BatchSolution {
    /// An empty solution buffer for [`solve_many_into`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of chains solved.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// True if no chains were solved.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Local fractions `α̂` of chain `i` (bit-identical to
    /// `reference::solve(net_i).local`).
    #[inline]
    pub fn alpha_hat(&self, i: usize) -> &[f64] {
        &self.alpha_hat[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Equivalent times `w̄` of chain `i` (bit-identical to
    /// `reference::solve(net_i).equivalent`).
    #[inline]
    pub fn w_bar(&self, i: usize) -> &[f64] {
        &self.w_bar[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Global fractions `α` of chain `i` (bit-identical to
    /// `reference::solve(net_i).alloc`).
    #[inline]
    pub fn alloc(&self, i: usize) -> &[f64] {
        &self.alloc[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Optimal makespan `w̄_0` of chain `i`.
    #[inline]
    pub fn makespan(&self, i: usize) -> f64 {
        self.w_bar[self.offsets[i]]
    }

    /// Materialize chain `i` as a [`LinearSolution`] bit-identical to
    /// `reference::solve(net_i)` (copies out of the arenas).
    pub fn solution(&self, i: usize) -> LinearSolution {
        LinearSolution {
            local: LocalAllocation::new(self.alpha_hat(i).to_vec()),
            alloc: crate::model::Allocation::new(self.alloc(i).to_vec()),
            equivalent: self.w_bar(i).to_vec(),
        }
    }
}

/// The per-lane kernel: backward reduction sweep (eqs. 2.4/2.7) then the
/// forward unroll (eqs. 2.5–2.6), over `k` independent lanes of length
/// `len`, step-major (`buf[step * k + lane]`). Per lane this is *exactly*
/// the FP operation sequence of the frozen scalar solver; the inner loops
/// are branch-free over contiguous slices so the compiler vectorizes across
/// lanes.
// The parameters are the five split-borrowed scratch buffers; bundling them
// in a struct would force whole-scratch borrows at the call sites.
#[allow(clippy::too_many_arguments)]
fn sweep_cohort(
    len: usize,
    k: usize,
    lane_w: &[f64],
    lane_z: &[f64],
    lane_ah: &mut [f64],
    lane_wbar: &mut [f64],
    lane_alloc: &mut [f64],
    carried: &mut Vec<f64>,
) {
    debug_assert_eq!(lane_w.len(), len * k);
    debug_assert_eq!(lane_z.len(), (len - 1) * k);
    let m = len - 1;
    // α̂_m = 1, w̄_m = w_m.
    {
        let w_row = &lane_w[m * k..(m + 1) * k];
        let ah_row = &mut lane_ah[m * k..(m + 1) * k];
        let wb_row = &mut lane_wbar[m * k..(m + 1) * k];
        for l in 0..k {
            ah_row[l] = 1.0;
            wb_row[l] = w_row[l];
        }
    }
    // Backward: α̂_i = tail / (w_i + tail), w̄_i = α̂_i · w_i.
    for s in (0..m).rev() {
        let (wb_head, wb_tail) = lane_wbar.split_at_mut((s + 1) * k);
        let wb_row = &mut wb_head[s * k..];
        let wb_next = &wb_tail[..k];
        let w_row = &lane_w[s * k..(s + 1) * k];
        let z_row = &lane_z[s * k..(s + 1) * k];
        let ah_row = &mut lane_ah[s * k..(s + 1) * k];
        for l in 0..k {
            let tail = wb_next[l] + z_row[l];
            let ah = tail / (w_row[l] + tail);
            ah_row[l] = ah;
            wb_row[l] = ah * w_row[l];
        }
    }
    // Forward: α_j = carried · α̂_j, carried *= 1 − α̂_j.
    carried.clear();
    carried.resize(k, 1.0);
    for s in 0..len {
        let ah_row = &lane_ah[s * k..(s + 1) * k];
        let al_row = &mut lane_alloc[s * k..(s + 1) * k];
        for l in 0..k {
            let ah = ah_row[l];
            al_row[l] = carried[l] * ah;
            carried[l] *= 1.0 - ah;
        }
    }
}

/// Solve every chain in `nets`, writing into `out` and using `scratch` for
/// all intermediate storage. With warm buffers this performs no heap
/// allocation. Results are independent of batch composition and order:
/// chain `i`'s lanes are bit-identical to `reference::solve(&nets[i])`
/// whatever else shares the batch.
pub fn solve_many_into(
    nets: &[LinearNetwork],
    scratch: &mut BatchScratch,
    out: &mut BatchSolution,
) {
    assert!(
        nets.len() <= u32::MAX as usize,
        "batch too large for u32 lane indices"
    );
    out.offsets.clear();
    out.offsets.push(0);
    let mut total = 0usize;
    for net in nets {
        total += net.len();
        out.offsets.push(total);
    }
    out.alpha_hat.clear();
    out.alpha_hat.resize(total, 0.0);
    out.w_bar.clear();
    out.w_bar.resize(total, 0.0);
    out.alloc.clear();
    out.alloc.resize(total, 0.0);

    // Cohort grouping: stable order (length, then input index) so reuse of a
    // dirty scratch is deterministic by construction.
    scratch.order.clear();
    scratch.order.extend(0..nets.len() as u32);
    scratch
        .order
        .sort_unstable_by_key(|&i| (nets[i as usize].len(), i));

    let mut start = 0usize;
    while start < scratch.order.len() {
        let len = nets[scratch.order[start] as usize].len();
        let mut end = start + 1;
        while end < scratch.order.len() && nets[scratch.order[end] as usize].len() == len {
            end += 1;
        }

        // Process the cohort in cache-sized tiles of at most TILE lanes.
        let mut tile = start;
        while tile < end {
            let k = (end - tile).min(TILE);

            // Gather the tile into step-major lanes.
            scratch.lane_w.clear();
            scratch.lane_w.resize(len * k, 0.0);
            scratch.lane_z.clear();
            scratch.lane_z.resize((len - 1) * k, 0.0);
            scratch.lane_ah.clear();
            scratch.lane_ah.resize(len * k, 0.0);
            scratch.lane_wbar.clear();
            scratch.lane_wbar.resize(len * k, 0.0);
            scratch.lane_alloc.clear();
            scratch.lane_alloc.resize(len * k, 0.0);
            for l in 0..k {
                let net = &nets[scratch.order[tile + l] as usize];
                for s in 0..len {
                    scratch.lane_w[s * k + l] = net.w(s);
                }
                for s in 0..len - 1 {
                    scratch.lane_z[s * k + l] = net.z(s + 1);
                }
            }

            sweep_cohort(
                len,
                k,
                &scratch.lane_w,
                &scratch.lane_z,
                &mut scratch.lane_ah,
                &mut scratch.lane_wbar,
                &mut scratch.lane_alloc,
                &mut scratch.carried,
            );

            // Scatter lanes back to the arenas at each chain's offset.
            for l in 0..k {
                let base = out.offsets[scratch.order[tile + l] as usize];
                for s in 0..len {
                    out.alpha_hat[base + s] = scratch.lane_ah[s * k + l];
                    out.w_bar[base + s] = scratch.lane_wbar[s * k + l];
                    out.alloc[base + s] = scratch.lane_alloc[s * k + l];
                }
            }
            tile += k;
        }
        start = end;
    }
}

/// Solve every chain in `nets` into a fresh [`BatchSolution`]. Convenience
/// wrapper over [`solve_many_into`]; batch-loop callers should reuse a
/// [`BatchScratch`] and output buffer instead.
pub fn solve_many(nets: &[LinearNetwork]) -> BatchSolution {
    obs::count!("dlt.batch.solve_many", "chains" => nets.len());
    let mut out = BatchSolution::new();
    SCRATCH.with(|s| solve_many_into(nets, &mut s.borrow_mut(), &mut out));
    out
}

thread_local! {
    /// Warm per-thread workspace backing [`solve_many`] and [`solve_one`].
    static SCRATCH: RefCell<BatchScratch> = RefCell::new(BatchScratch::new());
}

/// Solve a single chain through the batch kernel (one lane). Bit-identical
/// to `reference::solve`; the lane buffers come from a warm thread-local
/// scratch so the only allocations are the returned solution's own vectors.
/// This is the routing point for single-chain hot callers (the serving
/// layer's cold solves, the fault runners' residual re-solves).
pub fn solve_one(net: &LinearNetwork) -> LinearSolution {
    obs::count!("dlt.batch.solve_one", "m" => net.last_index());
    SCRATCH.with(|s| {
        let scratch = &mut *s.borrow_mut();
        let len = net.len();
        scratch.lane_w.clear();
        scratch.lane_w.extend((0..len).map(|i| net.w(i)));
        scratch.lane_z.clear();
        scratch.lane_z.extend((1..len).map(|j| net.z(j)));
        let mut alpha_hat = vec![0.0; len];
        let mut w_bar = vec![0.0; len];
        let mut alloc = vec![0.0; len];
        sweep_cohort(
            len,
            1,
            &scratch.lane_w,
            &scratch.lane_z,
            &mut alpha_hat,
            &mut w_bar,
            &mut alloc,
            &mut scratch.carried,
        );
        LinearSolution {
            local: LocalAllocation::new(alpha_hat),
            alloc: crate::model::Allocation::new(alloc),
            equivalent: w_bar,
        }
    })
}

/// Every suffix solution of one chain, from a single O(m) backward sweep.
///
/// The `w̄` recursion already computes all suffix equivalents: the values at
/// index `i` depend only on indices `> i`, so the full-chain arrays *are*
/// the per-suffix arrays. Holds both the solve-style `w̄` (eq. 2.4 as
/// `α̂·w`) and the `equivalent_time`-style values (`w·t/(w+t)`), which are
/// distinct FP operation orders and distinct bit-identity targets — the
/// payment functions use both.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct SuffixSolutions {
    alpha_hat: Vec<f64>,
    w_bar: Vec<f64>,
    eq_time: Vec<f64>,
}

impl SuffixSolutions {
    /// An empty buffer for [`solve_all_suffixes_into`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of processors (= number of suffixes).
    #[inline]
    pub fn len(&self) -> usize {
        self.alpha_hat.len()
    }

    /// True if nothing has been solved into this buffer yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.alpha_hat.is_empty()
    }

    /// Front local fraction of suffix `i`: bit-identical to
    /// `reference::solve_suffix(net, i).local.alpha_hat(0)`.
    #[inline]
    pub fn alpha_hat_front(&self, i: usize) -> f64 {
        self.alpha_hat[i]
    }

    /// Makespan of suffix `i`: bit-identical to
    /// `reference::solve_suffix(net, i).makespan()`.
    #[inline]
    pub fn makespan(&self, i: usize) -> f64 {
        self.w_bar[i]
    }

    /// Bit-identical to `reference::equivalent_time(&net.suffix(i))` (the
    /// *other* recursion order — see module docs).
    #[inline]
    pub fn equivalent_time(&self, i: usize) -> f64 {
        self.eq_time[i]
    }

    /// Materialize the full solution of suffix `i`, bit-identical to
    /// `reference::solve_suffix(net, i)`. O(m − i): only the forward unroll
    /// runs; the backward sweep is shared.
    pub fn solution(&self, i: usize) -> LinearSolution {
        let local = LocalAllocation::new(self.alpha_hat[i..].to_vec());
        let alloc = local.to_global();
        LinearSolution {
            local,
            alloc,
            equivalent: self.w_bar[i..].to_vec(),
        }
    }
}

/// Compute [`SuffixSolutions`] for `net` into a reusable buffer.
pub fn solve_all_suffixes_into(net: &LinearNetwork, out: &mut SuffixSolutions) {
    let m = net.last_index();
    out.alpha_hat.clear();
    out.alpha_hat.resize(m + 1, 0.0);
    out.w_bar.clear();
    out.w_bar.resize(m + 1, 0.0);
    out.eq_time.clear();
    out.eq_time.resize(m + 1, 0.0);
    out.alpha_hat[m] = 1.0;
    out.w_bar[m] = net.w(m);
    out.eq_time[m] = net.w(m);
    for i in (0..m).rev() {
        // Solve-style recursion (α̂ then w̄ = α̂·w) — reference::solve.
        let tail = out.w_bar[i + 1] + net.z(i + 1);
        out.alpha_hat[i] = tail / (net.w(i) + tail);
        out.w_bar[i] = out.alpha_hat[i] * net.w(i);
        // equivalent_time-style recursion (w·t/(w+t)) — a different FP
        // order, pinned to reference::equivalent_time.
        let et_tail = out.eq_time[i + 1] + net.z(i + 1);
        out.eq_time[i] = net.w(i) * et_tail / (net.w(i) + et_tail);
    }
}

/// Every suffix solution of `net` in one O(m) backward sweep (fresh buffer).
pub fn solve_all_suffixes(net: &LinearNetwork) -> SuffixSolutions {
    obs::count!("dlt.batch.solve_all_suffixes", "m" => net.last_index());
    let mut out = SuffixSolutions::new();
    solve_all_suffixes_into(net, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::reference;

    fn nets() -> Vec<LinearNetwork> {
        vec![
            LinearNetwork::from_rates(&[1.0, 2.0, 0.5, 4.0], &[0.2, 0.1, 0.7]),
            LinearNetwork::homogeneous(1, 3.0, 0.0),
            LinearNetwork::from_rates(&[0.7, 1.3], &[0.15]),
            LinearNetwork::from_rates(&[2.0, 1.0, 4.0, 0.25], &[0.3, 0.6, 0.1]),
            LinearNetwork::homogeneous(9, 1.5, 0.2),
        ]
    }

    #[test]
    fn solve_many_matches_reference_bitwise() {
        let nets = nets();
        let batch = solve_many(&nets);
        assert_eq!(batch.len(), nets.len());
        for (i, net) in nets.iter().enumerate() {
            let want = reference::solve(net);
            assert_eq!(format!("{:?}", batch.solution(i)), format!("{want:?}"));
            assert_eq!(batch.makespan(i).to_bits(), want.makespan().to_bits());
        }
    }

    #[test]
    fn solve_one_matches_reference_bitwise() {
        for net in nets() {
            let got = solve_one(&net);
            let want = reference::solve(&net);
            assert_eq!(format!("{got:?}"), format!("{want:?}"));
        }
    }

    #[test]
    fn dirty_scratch_reuse_is_idempotent() {
        let nets = nets();
        let mut scratch = BatchScratch::new();
        let mut a = BatchSolution::new();
        let mut b = BatchSolution::new();
        solve_many_into(&nets, &mut scratch, &mut a);
        // Poison the scratch with a differently-shaped batch, then re-solve.
        let other = vec![LinearNetwork::homogeneous(17, 0.9, 0.3)];
        let mut junk = BatchSolution::new();
        solve_many_into(&other, &mut scratch, &mut junk);
        solve_many_into(&nets, &mut scratch, &mut b);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn empty_batch_is_empty() {
        let batch = solve_many(&[]);
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
    }

    #[test]
    fn suffixes_match_reference_bitwise() {
        for net in nets() {
            let sfx = solve_all_suffixes(&net);
            assert_eq!(sfx.len(), net.len());
            for i in 0..net.len() {
                let want = reference::solve_suffix(&net, i);
                assert_eq!(
                    format!("{:?}", sfx.solution(i)),
                    format!("{want:?}"),
                    "suffix {i} of {net}"
                );
                assert_eq!(
                    sfx.alpha_hat_front(i).to_bits(),
                    want.local.alpha_hat(0).to_bits()
                );
                assert_eq!(sfx.makespan(i).to_bits(), want.makespan().to_bits());
                assert_eq!(
                    sfx.equivalent_time(i).to_bits(),
                    reference::equivalent_time(&net.suffix(i)).to_bits(),
                    "equivalent_time suffix {i}"
                );
            }
        }
    }
}
