//! Affine cost model: LINEAR BOUNDARY-**AFFINE**.
//!
//! The paper's naming scheme ("the word following the hyphen identifies the
//! cost model") anticipates cost models beyond linear. The affine model
//! adds fixed startup overheads — `s_i` to start computing at `P_i` and
//! `c_j` to open a transfer on link `ℓ_j` — so
//!
//! * computing `α` units at `P_i` costs `s_i + α·w_i` (when `α > 0`),
//! * shipping `D` units over `ℓ_j` costs `c_j + D·z_j` (when `D > 0`).
//!
//! The closed-form chain reduction no longer applies (startups break
//! scale-invariance), but the bisection approach of [`crate::baseline`]
//! generalizes: for a candidate common finish time `T`, force the
//! allocation front-to-back, clamping processors that cannot contribute
//! (`T` too small to cover their startup) to zero — which reproduces the
//! known qualitative behavior that *under affine costs, far processors may
//! be excluded from the optimal schedule* (unlike Theorem 2.1's
//! all-participate result for the linear model).

use crate::model::{Allocation, LinearNetwork, EPSILON};

/// Startup overheads for the affine model.
#[derive(Debug, Clone, PartialEq)]
pub struct AffineOverheads {
    /// Computation startup `s_i` per processor (`s.len() == n`).
    pub compute: Vec<f64>,
    /// Communication startup `c_j` per link (`c.len() == n − 1`).
    pub comm: Vec<f64>,
}

impl AffineOverheads {
    /// Uniform overheads across the chain.
    pub fn uniform(n: usize, compute: f64, comm: f64) -> Self {
        assert!(compute >= 0.0 && comm >= 0.0);
        Self {
            compute: vec![compute; n],
            comm: vec![comm; n.saturating_sub(1)],
        }
    }

    /// Zero overheads (degenerates to the linear model).
    pub fn zero(n: usize) -> Self {
        Self::uniform(n, 0.0, 0.0)
    }
}

/// Solution of the affine chain problem.
#[derive(Debug, Clone, PartialEq)]
pub struct AffineSolution {
    /// The allocation (may contain zeros: far processors can be priced out
    /// by their startup costs).
    pub alloc: Allocation,
    /// The achieved makespan.
    pub makespan: f64,
    /// How many processors participate (`α_i > 0`).
    pub participants: usize,
    /// Bisection iterations used.
    pub iterations: usize,
}

/// Finish times under the affine model for an arbitrary allocation.
///
/// `T_j = Σ_{k≤j, D_k>0}(c_k + D_k z_k) + s_j + α_j w_j` for `α_j > 0`,
/// else 0 — the affine generalization of eqs. 2.1–2.2.
pub fn finish_times(
    net: &LinearNetwork,
    overheads: &AffineOverheads,
    alloc: &Allocation,
) -> Vec<f64> {
    let n = net.len();
    assert_eq!(alloc.len(), n);
    assert_eq!(overheads.compute.len(), n);
    assert_eq!(overheads.comm.len(), n - 1);
    let mut out = Vec::with_capacity(n);
    let mut remaining = 1.0;
    let mut comm = 0.0;
    for j in 0..n {
        if j > 0 {
            remaining -= alloc.alpha(j - 1);
            if remaining > EPSILON {
                comm += overheads.comm[j - 1] + remaining * net.z(j);
            }
        }
        if alloc.alpha(j) > 0.0 {
            out.push(comm + overheads.compute[j] + alloc.alpha(j) * net.w(j));
        } else {
            out.push(0.0);
        }
    }
    out
}

/// Makespan under the affine model.
pub fn makespan(net: &LinearNetwork, overheads: &AffineOverheads, alloc: &Allocation) -> f64 {
    finish_times(net, overheads, alloc)
        .into_iter()
        .fold(0.0, f64::max)
}

/// Force the allocation for a candidate common finish time `T`: each
/// processor takes as much as it can finish by `T` (zero if its startup
/// alone exceeds the budget), front to back. Returns the allocation and
/// the unassigned residual.
fn force(net: &LinearNetwork, overheads: &AffineOverheads, t: f64) -> (Vec<f64>, f64) {
    let n = net.len();
    let mut alloc = Vec::with_capacity(n);
    let mut assigned = 0.0;
    let mut comm = 0.0;
    for j in 0..n {
        if j > 0 {
            let d_j = 1.0 - assigned;
            if d_j <= EPSILON {
                // Nothing (or less than nothing — `t` over-assigned) is
                // left to ship; the tail is excluded.
                alloc.push(0.0);
                continue;
            }
            comm += overheads.comm[j - 1] + d_j * net.z(j);
        }
        let budget = t - comm - overheads.compute[j];
        // No upper clamp: over-assignment makes the residual negative,
        // which is exactly the bisection's "t too large" signal.
        let a = (budget / net.w(j)).max(0.0);
        alloc.push(a);
        assigned += a;
    }
    (alloc, 1.0 - assigned)
}

/// Solve the affine chain problem by bisection on the common finish time.
///
/// With startups, the optimum no longer equalizes *all* finish times —
/// only those of participating processors; excluded processors finish at 0.
pub fn solve(net: &LinearNetwork, overheads: &AffineOverheads) -> AffineSolution {
    let n = net.len();
    assert_eq!(overheads.compute.len(), n);
    assert_eq!(overheads.comm.len(), n - 1);
    let mut lo = 0.0;
    // Upper bound: the root alone computes everything.
    let mut hi = overheads.compute[0] + net.w(0);
    let mut iterations = 0;
    while iterations < 200 {
        let mid = 0.5 * (lo + hi);
        let (_, residual) = force(net, overheads, mid);
        if residual.abs() <= 1e-13 || (hi - lo) < f64::EPSILON * hi.max(1.0) {
            lo = mid;
            hi = mid;
            iterations += 1;
            break;
        }
        if residual > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
        iterations += 1;
    }
    let t = 0.5 * (lo + hi);
    let (mut alloc, residual) = force(net, overheads, t);
    // Absorb the tiny residual into the last participating processor.
    if let Some(last) = alloc.iter().rposition(|&a| a > 0.0) {
        alloc[last] += residual;
    }
    let participants = alloc.iter().filter(|&&a| a > EPSILON).count();
    let allocation = Allocation::new(alloc);
    AffineSolution {
        makespan: t,
        alloc: allocation,
        participants,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear;

    fn net() -> LinearNetwork {
        LinearNetwork::from_rates(&[1.0, 2.0, 0.5, 4.0], &[0.2, 0.1, 0.7])
    }

    #[test]
    fn zero_overheads_reduce_to_linear_model() {
        let net = net();
        let sol = solve(&net, &AffineOverheads::zero(net.len()));
        let lin = linear::solve(&net);
        assert!((sol.makespan - lin.makespan()).abs() < 1e-9);
        for i in 0..net.len() {
            assert!(
                (sol.alloc.alpha(i) - lin.alloc.alpha(i)).abs() < 1e-7,
                "α_{i}"
            );
        }
        assert_eq!(sol.participants, net.len());
    }

    #[test]
    fn overheads_increase_makespan() {
        let net = net();
        let free = solve(&net, &AffineOverheads::zero(net.len())).makespan;
        let costly = solve(&net, &AffineOverheads::uniform(net.len(), 0.05, 0.05)).makespan;
        assert!(costly > free);
    }

    #[test]
    fn huge_comm_startup_excludes_far_processors() {
        let net = net();
        let overheads = AffineOverheads::uniform(net.len(), 0.0, 10.0);
        let sol = solve(&net, &overheads);
        assert_eq!(sol.participants, 1, "only the root should work");
        assert!((sol.alloc.alpha(0) - 1.0).abs() < 1e-9);
        assert!(
            (sol.makespan - 1.0).abs() < 1e-9,
            "root alone takes w_0 = 1"
        );
    }

    #[test]
    fn moderate_startup_partial_participation() {
        // Tune the startup so that some but not all processors are priced
        // out.
        let chain = LinearNetwork::from_rates(&[1.0, 1.0, 1.0, 1.0], &[0.5, 0.5, 0.5]);
        let mut excluded_seen = false;
        for c in [0.1, 0.2, 0.3, 0.4, 0.5] {
            let sol = solve(&chain, &AffineOverheads::uniform(4, 0.0, c));
            if sol.participants > 1 && sol.participants < 4 {
                excluded_seen = true;
            }
        }
        assert!(
            excluded_seen,
            "some startup level should exclude only the tail"
        );
    }

    #[test]
    fn participating_processors_finish_together() {
        let net = net();
        let overheads = AffineOverheads::uniform(net.len(), 0.02, 0.03);
        let sol = solve(&net, &overheads);
        let times = finish_times(&net, &overheads, &sol.alloc);
        for (i, &t) in times.iter().enumerate() {
            if sol.alloc.alpha(i) > EPSILON {
                assert!(
                    (t - sol.makespan).abs() < 1e-7,
                    "P{i}: {t} vs {}",
                    sol.makespan
                );
            }
        }
    }

    #[test]
    fn allocation_is_feasible() {
        let net = net();
        let sol = solve(&net, &AffineOverheads::uniform(net.len(), 0.1, 0.1));
        sol.alloc.validate().unwrap();
    }

    #[test]
    fn compute_startup_shifts_load_to_root() {
        let chain = LinearNetwork::from_rates(&[1.0, 1.0], &[0.1]);
        let free = solve(&chain, &AffineOverheads::zero(2));
        let mut oh = AffineOverheads::zero(2);
        oh.compute[1] = 0.2; // only the helper pays a startup
        let costly = solve(&chain, &oh);
        assert!(costly.alloc.alpha(0) > free.alloc.alpha(0));
    }

    #[test]
    fn finish_times_skip_empty_transfers() {
        // When nothing is forwarded, no communication startup is paid.
        let chain = LinearNetwork::from_rates(&[1.0, 1.0], &[0.1]);
        let oh = AffineOverheads::uniform(2, 0.0, 5.0);
        let alloc = Allocation::new(vec![1.0, 0.0]);
        let times = finish_times(&chain, &oh, &alloc);
        assert_eq!(times[0], 1.0);
        assert_eq!(times[1], 0.0);
    }

    #[test]
    fn monotone_in_overheads() {
        let net = net();
        let mut prev = 0.0;
        for c in [0.0, 0.01, 0.05, 0.1, 0.5, 1.0] {
            let ms = solve(&net, &AffineOverheads::uniform(net.len(), c, c)).makespan;
            assert!(ms >= prev - 1e-12, "makespan must grow with overheads");
            prev = ms;
        }
    }
}
