//! Service-order (sequencing) analysis for star networks.
//!
//! With one-port sequential distribution, the *order* in which a root
//! serves its children is a degree of freedom. The classical result is
//! that serving children in **ascending link-rate order** (fastest links
//! first) minimizes the makespan, independently of the processor rates.
//! This module provides:
//!
//! * [`exhaustive_best_order`] — brute-force search over all `m!` orders
//!   (small `m`), the ground truth;
//! * [`try_exhaustive_best_order`] — the same search behind an explicit
//!   evaluation budget, returning a typed [`BudgetExceeded`] instead of
//!   panicking;
//! * [`ascending_link_order`] — the classical heuristic;
//! * [`order_makespan`] — evaluate any order.
//!
//! This module is star-only; [`crate::seqsearch`] generalizes the order
//! space to arbitrary trees (one permutation per internal node) with the
//! same budget-guarded oracle plus a seeded local search for large `n`.
//!
//! The experiment `exp_sequencing` uses these to verify the classical
//! result empirically — it is also the justification for
//! [`crate::tree::canonicalize`], which the tree *mechanism* needs: with a
//! suboptimal service order the equal-finish solution is not min-makespan,
//! the parent's equivalent time loses monotonicity in a child's bid, and
//! strategyproofness breaks (observed, then fixed, during this
//! reproduction — see DESIGN.md).

use crate::model::StarNetwork;
use crate::seqsearch::BudgetExceeded;
use crate::star;

/// Default evaluation budget for [`exhaustive_best_order`]: `9!`, the
/// largest star the historical hard guard admitted.
pub const DEFAULT_ORDER_BUDGET: u64 = 362_880;

/// Evaluate the optimal equal-finish makespan of a star when children are
/// served in the given order (indices into `net.children()`).
pub fn order_makespan(net: &StarNetwork, order: &[usize]) -> f64 {
    assert_eq!(order.len(), net.children().len());
    let permuted = StarNetwork::new(
        net.root(),
        order.iter().map(|&i| net.children()[i]).collect(),
    );
    star::solve(&permuted).makespan
}

/// The ascending-link-rate order (stable for ties).
pub fn ascending_link_order(net: &StarNetwork) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..net.children().len()).collect();
    idx.sort_by(|&a, &b| net.children()[a].0.z.total_cmp(&net.children()[b].0.z));
    idx
}

/// Result of the exhaustive order search.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderSearch {
    /// The best order found.
    pub best_order: Vec<usize>,
    /// Its makespan.
    pub best_makespan: f64,
    /// The worst order's makespan (for the spread).
    pub worst_makespan: f64,
    /// Number of orders evaluated.
    pub evaluated: usize,
}

/// Brute-force all `m!` service orders under the default budget
/// ([`DEFAULT_ORDER_BUDGET`]). Panics past it — callers that want a typed
/// error instead use [`try_exhaustive_best_order`] with their own budget.
pub fn exhaustive_best_order(net: &StarNetwork) -> OrderSearch {
    try_exhaustive_best_order(net, DEFAULT_ORDER_BUDGET).unwrap_or_else(|e| {
        panic!(
            "exhaustive search is factorial; m = {} is too large ({e})",
            net.children().len()
        )
    })
}

/// Brute-force all `m!` service orders behind an explicit evaluation
/// budget: refuses with [`BudgetExceeded`] **before** evaluating anything
/// when `m!` exceeds `budget`, instead of silently exploding (or
/// panicking) on large stars.
pub fn try_exhaustive_best_order(
    net: &StarNetwork,
    budget: u64,
) -> Result<OrderSearch, BudgetExceeded> {
    let m = net.children().len();
    let required = (2..=m as u128).try_fold(1u128, u128::checked_mul);
    let required = required.unwrap_or(u128::MAX);
    if required > budget as u128 {
        return Err(BudgetExceeded { required, budget });
    }
    let mut order: Vec<usize> = (0..m).collect();
    let mut best_order = order.clone();
    let mut best = f64::INFINITY;
    let mut worst = f64::NEG_INFINITY;
    let mut evaluated = 0;
    permute(&mut order, 0, &mut |perm| {
        let ms = order_makespan(net, perm);
        evaluated += 1;
        if ms < best {
            best = ms;
            best_order = perm.to_vec();
        }
        worst = worst.max(ms);
    });
    Ok(OrderSearch {
        best_order,
        best_makespan: best,
        worst_makespan: worst,
        evaluated,
    })
}

fn permute(items: &mut [usize], k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

/// Convenience: build a star from raw rates and search orders.
pub fn search_from_rates(w: &[f64], z: &[f64]) -> OrderSearch {
    exhaustive_best_order(&StarNetwork::from_rates(w, z))
}

/// True if the ascending-link order achieves the exhaustive optimum
/// within `tol`.
pub fn ascending_is_optimal(net: &StarNetwork, tol: f64) -> bool {
    let search = exhaustive_best_order(net);
    let asc = order_makespan(net, &ascending_link_order(net));
    asc <= search.best_makespan + tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StarNetwork;

    fn heterogeneous() -> StarNetwork {
        StarNetwork::from_rates(&[1.0, 2.0, 0.7, 3.0, 1.1], &[0.66, 0.1, 0.4, 0.05])
    }

    #[test]
    fn identity_order_matches_direct_solve() {
        let net = heterogeneous();
        let identity: Vec<usize> = (0..4).collect();
        assert!((order_makespan(&net, &identity) - star::solve(&net).makespan).abs() < 1e-15);
    }

    #[test]
    fn exhaustive_covers_m_factorial() {
        let net = heterogeneous();
        let search = exhaustive_best_order(&net);
        assert_eq!(search.evaluated, 24);
        assert!(search.best_makespan <= search.worst_makespan);
    }

    #[test]
    fn ascending_link_order_sorts_by_z() {
        let net = heterogeneous();
        let order = ascending_link_order(&net);
        assert_eq!(order, vec![3, 1, 2, 0]); // z = 0.05, 0.1, 0.4, 0.66
    }

    #[test]
    fn ascending_order_is_optimal_here() {
        assert!(ascending_is_optimal(&heterogeneous(), 1e-12));
    }

    #[test]
    fn order_matters_with_heterogeneous_links() {
        let net = heterogeneous();
        let search = exhaustive_best_order(&net);
        assert!(
            search.worst_makespan > search.best_makespan + 1e-6,
            "with spread-out link rates the order must matter"
        );
    }

    #[test]
    fn order_is_irrelevant_for_uniform_links_and_rates() {
        let net = StarNetwork::bus(1.0, &[2.0, 2.0, 2.0], 0.3);
        let search = exhaustive_best_order(&net);
        assert!((search.worst_makespan - search.best_makespan).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "factorial")]
    fn guards_against_large_m() {
        let w = vec![1.0; 11];
        let z = vec![0.1; 10];
        exhaustive_best_order(&StarNetwork::from_rates(&w, &z));
    }

    #[test]
    fn budgeted_search_returns_a_typed_error_past_the_budget() {
        let net = heterogeneous(); // m = 4 → 24 orders
        let err = try_exhaustive_best_order(&net, 23).unwrap_err();
        assert_eq!(
            err,
            BudgetExceeded {
                required: 24,
                budget: 23
            }
        );
        // At the budget it runs, and matches the unguarded search exactly.
        let ok = try_exhaustive_best_order(&net, 24).unwrap();
        assert_eq!(ok, exhaustive_best_order(&net));
    }

    #[test]
    fn budgeted_search_refuses_overflowing_order_spaces() {
        // 40! overflows u128; the guard must saturate, not wrap.
        let w = vec![1.0; 41];
        let z: Vec<f64> = (0..40).map(|i| 0.1 + 0.01 * i as f64).collect();
        let err =
            try_exhaustive_best_order(&StarNetwork::from_rates(&w, &z), u64::MAX).unwrap_err();
        assert_eq!(err.required, u128::MAX);
    }

    #[test]
    fn ascending_link_order_is_tie_stable() {
        // Equal link rates must keep index order — the canonicalization
        // contract `dlt::tree::canonicalize` silently relies on (stable
        // sort), and the property that makes frozen searched orders
        // reproducible across identical instances.
        let net = StarNetwork::from_rates(&[1.0, 3.0, 0.4, 2.2, 1.7], &[0.3, 0.3, 0.1, 0.3]);
        assert_eq!(ascending_link_order(&net), vec![2, 0, 1, 3]);
        let bus = StarNetwork::bus(1.0, &[2.0, 0.5, 1.2, 3.3], 0.25);
        assert_eq!(
            ascending_link_order(&bus),
            vec![0, 1, 2, 3],
            "all-equal links must be served in index order"
        );
    }
}
