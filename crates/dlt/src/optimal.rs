//! Optimality verification utilities.
//!
//! Algorithm 1 is proved optimal in the DLT literature \[6\]; these utilities
//! let tests and experiments *check* that claim numerically, independent of
//! the solver's own algebra:
//!
//! * [`perturbation_probe`] — move load between processor pairs and confirm
//!   the makespan never improves (local optimality over the feasible
//!   simplex; the problem is a linear-fractional program, so local
//!   optimality over pairwise exchanges implies global optimality).
//! * [`monotonicity`] probes — the comparative statics that power the
//!   strategyproofness proof (Lemma 5.3): bidding slower weakly *reduces*
//!   assigned load, and weakly *increases* the chain's equivalent time.

use crate::linear;
use crate::model::{Allocation, LinearNetwork};
use crate::timing::makespan;

/// Outcome of a perturbation probe.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeReport {
    /// Number of perturbations attempted.
    pub attempts: usize,
    /// Number of perturbations that (incorrectly) improved the makespan
    /// beyond tolerance.
    pub improvements: usize,
    /// The best (most negative) makespan delta observed.
    pub best_delta: f64,
}

impl ProbeReport {
    /// True if no perturbation improved the makespan.
    pub fn is_optimal(&self) -> bool {
        self.improvements == 0
    }
}

/// Exhaustively probe all ordered processor pairs `(i, j)`, moving `delta`
/// units of load from `i` to `j` (clamped to feasibility), and record any
/// makespan improvement beyond `tol`.
pub fn perturbation_probe(
    net: &LinearNetwork,
    alloc: &Allocation,
    delta: f64,
    tol: f64,
) -> ProbeReport {
    let _span = obs::span!("dlt.optimal.perturbation_probe", "n" => net.len());
    let base = makespan(net, alloc);
    let n = net.len();
    let mut attempts = 0;
    let mut improvements = 0;
    let mut best_delta = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let moved = delta.min(alloc.alpha(i));
            if moved <= 0.0 {
                continue;
            }
            let mut f = alloc.fractions().to_vec();
            f[i] -= moved;
            f[j] += moved;
            let perturbed = Allocation::new(f);
            let d = makespan(net, &perturbed) - base;
            attempts += 1;
            if d < -tol {
                improvements += 1;
            }
            best_delta = best_delta.min(d);
        }
    }
    obs::hist!("dlt.optimal.probe_attempts", attempts as f64);
    ProbeReport {
        attempts,
        improvements,
        best_delta,
    }
}

/// Comparative statics of a single bid change: how processor `i`'s assigned
/// load and the chain's equivalent time respond when `w_i` is replaced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BidResponse {
    /// Assigned fraction at the original rate.
    pub alpha_before: f64,
    /// Assigned fraction at the new rate.
    pub alpha_after: f64,
    /// Chain equivalent time (optimal makespan) at the original rate.
    pub makespan_before: f64,
    /// Chain equivalent time at the new rate.
    pub makespan_after: f64,
}

/// Evaluate the response of the optimal solution to changing `w_i` to
/// `new_w`.
pub fn bid_response(net: &LinearNetwork, i: usize, new_w: f64) -> BidResponse {
    let before = linear::solve(net);
    let after = linear::solve(&net.with_processor_rate(i, new_w));
    BidResponse {
        alpha_before: before.alloc.alpha(i),
        alpha_after: after.alloc.alpha(i),
        makespan_before: before.makespan(),
        makespan_after: after.makespan(),
    }
}

/// Check the two monotonicity properties used by Lemma 5.3 for processor
/// `i` when its declared rate rises from `w_lo` to `w_hi` (`w_lo < w_hi`):
/// load weakly decreases, equivalent time weakly increases.
pub fn monotonicity(net: &LinearNetwork, i: usize, w_lo: f64, w_hi: f64, tol: f64) -> bool {
    assert!(w_lo < w_hi);
    let lo = linear::solve(&net.with_processor_rate(i, w_lo));
    let hi = linear::solve(&net.with_processor_rate(i, w_hi));
    lo.alloc.alpha(i) + tol >= hi.alloc.alpha(i) && lo.makespan() <= hi.makespan() + tol
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LinearNetwork {
        LinearNetwork::from_rates(&[1.0, 2.0, 0.5, 4.0], &[0.2, 0.1, 0.7])
    }

    #[test]
    fn optimal_solution_survives_probe() {
        let net = sample();
        let sol = linear::solve(&net);
        let report = perturbation_probe(&net, &sol.alloc, 1e-4, 1e-9);
        assert!(report.is_optimal(), "probe found improvement: {report:?}");
        assert!(report.attempts > 0);
    }

    #[test]
    fn suboptimal_allocation_fails_probe() {
        let net = LinearNetwork::from_rates(&[1.0, 1.0], &[0.1]);
        // Everything at the root is clearly improvable.
        let bad = Allocation::new(vec![1.0, 0.0]);
        let report = perturbation_probe(&net, &bad, 0.05, 1e-9);
        assert!(!report.is_optimal());
        assert!(report.best_delta < 0.0);
    }

    #[test]
    fn probe_respects_feasibility() {
        let net = sample();
        let sol = linear::solve(&net);
        // huge delta is clamped to the source fraction; must not panic
        let report = perturbation_probe(&net, &sol.alloc, 10.0, 1e-9);
        assert!(report.attempts > 0);
    }

    #[test]
    fn bidding_slower_sheds_load() {
        let net = sample();
        for i in 0..net.len() {
            let r = bid_response(&net, i, net.w(i) * 2.0);
            assert!(
                r.alpha_after <= r.alpha_before + 1e-12,
                "P_{i} load must not grow"
            );
            assert!(
                r.makespan_after >= r.makespan_before - 1e-12,
                "makespan must not shrink"
            );
        }
    }

    #[test]
    fn bidding_faster_attracts_load() {
        let net = sample();
        for i in 0..net.len() {
            let r = bid_response(&net, i, net.w(i) * 0.5);
            assert!(r.alpha_after >= r.alpha_before - 1e-12);
            assert!(r.makespan_after <= r.makespan_before + 1e-12);
        }
    }

    #[test]
    fn monotonicity_holds_across_grid() {
        let net = sample();
        for i in 0..net.len() {
            for (lo, hi) in [(0.5, 1.0), (1.0, 3.0), (0.1, 10.0)] {
                assert!(
                    monotonicity(&net, i, lo, hi, 1e-12),
                    "P_{i} lo={lo} hi={hi}"
                );
            }
        }
    }
}
