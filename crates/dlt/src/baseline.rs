//! Independent baseline solver for LINEAR BOUNDARY-LINEAR, used as an
//! oracle against Algorithm 1.
//!
//! Instead of the chain reduction, this solver bisects on the common finish
//! time `T`. Given a candidate `T`, the allocation is forced front-to-back:
//!
//! * `α_0 = T / w_0` (from `T_0 = α_0 w_0`),
//! * for `j ≥ 1`: `T_j = Σ_{k≤j} D_k z_k + α_j w_j = T` fixes
//!   `α_j = (T − Σ_{k≤j} D_k z_k) / w_j`, where `D_k` follows from the
//!   already-fixed `α_0 … α_{k-1}`.
//!
//! The residual load `g(T) = 1 − Σ α_j(T)` is strictly decreasing in `T`, so
//! the unique root (the optimal makespan, by Theorem 2.1) is found by
//! bisection. This is O(m log(range/tol)) versus Algorithm 1's O(m), which
//! the ablation bench quantifies — but the real value is that it shares *no
//! code or algebra* with the reduction solver.

use crate::model::{Allocation, LinearNetwork};

/// Outcome of evaluating a candidate makespan.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The forced allocation (may be infeasible: negative entries or not
    /// summing to one).
    pub alloc: Vec<f64>,
    /// Residual load `1 − Σ α_j`; positive means `T` is too small.
    pub residual: f64,
}

/// Force the front-to-back allocation for a candidate common finish time.
pub fn force_allocation(net: &LinearNetwork, t: f64) -> Candidate {
    let m = net.last_index();
    let mut alloc = Vec::with_capacity(m + 1);
    let mut assigned = 0.0;
    let mut comm = 0.0;
    alloc.push(t / net.w(0));
    assigned += alloc[0];
    for j in 1..=m {
        let d_j = 1.0 - assigned; // load crossing link ℓ_j
        comm += d_j * net.z(j);
        let a = (t - comm) / net.w(j);
        alloc.push(a);
        assigned += a;
    }
    Candidate {
        alloc,
        residual: 1.0 - assigned,
    }
}

/// Parameters for the bisection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BisectionParams {
    /// Absolute tolerance on the residual load.
    pub tolerance: f64,
    /// Maximum number of bisection iterations.
    pub max_iters: usize,
}

impl Default for BisectionParams {
    fn default() -> Self {
        Self {
            tolerance: 1e-13,
            max_iters: 200,
        }
    }
}

/// Result of the bisection solver.
#[derive(Debug, Clone, PartialEq)]
pub struct BisectionSolution {
    /// The optimal allocation.
    pub alloc: Allocation,
    /// The optimal makespan.
    pub makespan: f64,
    /// Number of iterations used.
    pub iterations: usize,
}

/// Solve the chain problem by bisection on the common finish time.
pub fn solve_bisection(net: &LinearNetwork, params: BisectionParams) -> BisectionSolution {
    // Lower bound: zero. Upper bound: the root computing everything alone.
    let mut lo = 0.0;
    let mut hi = net.w(0);
    debug_assert!(force_allocation(net, hi).residual <= 0.0);
    let mut iterations = 0;
    while iterations < params.max_iters {
        let mid = 0.5 * (lo + hi);
        let cand = force_allocation(net, mid);
        if cand.residual.abs() <= params.tolerance || (hi - lo) < f64::EPSILON * hi.max(1.0) {
            lo = mid;
            hi = mid;
            iterations += 1;
            break;
        }
        if cand.residual > 0.0 {
            lo = mid; // T too small: load left over
        } else {
            hi = mid; // T too large: over-assigned
        }
        iterations += 1;
    }
    let t = 0.5 * (lo + hi);
    let mut cand = force_allocation(net, t);
    // Absorb the (tiny) residual into the terminal processor so the output
    // sums to exactly one.
    let m = net.last_index();
    cand.alloc[m] += cand.residual;
    BisectionSolution {
        alloc: Allocation::new(cand.alloc),
        makespan: t,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear;
    use crate::timing::participation_spread;

    #[test]
    fn residual_decreases_in_t() {
        let net = LinearNetwork::from_rates(&[1.0, 2.0, 3.0], &[0.5, 0.25]);
        let r1 = force_allocation(&net, 0.1).residual;
        let r2 = force_allocation(&net, 0.5).residual;
        let r3 = force_allocation(&net, 0.9).residual;
        assert!(r1 > r2 && r2 > r3);
    }

    #[test]
    fn bisection_matches_algorithm_1_two_proc() {
        let net = LinearNetwork::from_rates(&[1.0, 1.0], &[1.0]);
        let b = solve_bisection(&net, BisectionParams::default());
        let a = linear::solve(&net);
        assert!((b.makespan - a.makespan()).abs() < 1e-10);
        for i in 0..2 {
            assert!((b.alloc.alpha(i) - a.alloc.alpha(i)).abs() < 1e-9);
        }
    }

    #[test]
    fn bisection_matches_algorithm_1_heterogeneous() {
        let net = LinearNetwork::from_rates(&[0.8, 2.5, 1.1, 3.7, 0.4], &[0.12, 0.45, 0.08, 0.33]);
        let b = solve_bisection(&net, BisectionParams::default());
        let a = linear::solve(&net);
        assert!(
            (b.makespan - a.makespan()).abs() < 1e-9,
            "bisection {} vs reduction {}",
            b.makespan,
            a.makespan()
        );
        for i in 0..net.len() {
            assert!((b.alloc.alpha(i) - a.alloc.alpha(i)).abs() < 1e-8);
        }
    }

    #[test]
    fn bisection_output_is_feasible_and_balanced() {
        let net = LinearNetwork::from_rates(&[1.5, 0.9, 2.1], &[0.2, 0.3]);
        let b = solve_bisection(&net, BisectionParams::default());
        b.alloc.validate().unwrap();
        assert!(participation_spread(&net, &b.alloc) < 1e-8);
    }

    #[test]
    fn bisection_single_processor() {
        let net = LinearNetwork::homogeneous(1, 4.0, 0.0);
        let b = solve_bisection(&net, BisectionParams::default());
        assert!((b.makespan - 4.0).abs() < 1e-10);
        assert!((b.alloc.alpha(0) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn bisection_converges_within_budget() {
        let net = LinearNetwork::homogeneous(50, 1.0, 0.05);
        let b = solve_bisection(&net, BisectionParams::default());
        assert!(b.iterations <= BisectionParams::default().max_iters);
        b.alloc.validate().unwrap();
    }
}
