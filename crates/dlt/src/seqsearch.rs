//! Sequencing search over chain and tree service orders.
//!
//! [`crate::sequencing`] studies the star special case: one root, one
//! permutation of `m` children. This module generalizes the *order space*
//! to arbitrary trees (and degenerate chains): every internal node serves
//! its children in some permutation, so a full service order is one
//! permutation **per node** ([`TreeOrder`]), and the space has
//! `∏ fanout_i!` points ([`order_space_size`]). Two searchers cover it:
//!
//! * [`exhaustive_search`] — the ground-truth oracle. It enumerates the
//!   whole product space behind an **explicit budget guard**
//!   ([`BudgetExceeded`]) instead of silently exploding: callers state how
//!   many evaluations they are willing to pay and get a typed error past
//!   that, which is also how the star-only
//!   [`crate::sequencing::try_exhaustive_best_order`] is implemented.
//! * [`local_search`] — a seeded, deterministic first-class citizen for
//!   large trees: steepest-descent over an adjacent-swap + subtree-reorder
//!   neighborhood with seeded random restarts. Restart 0 always starts
//!   from the canonical ascending-link order, so the result can **never be
//!   worse than canonical**; determinism comes from an internal splitmix64
//!   stream (no external RNG dependency), so a fixed seed replays
//!   byte-for-byte.
//!
//! Every candidate order is evaluated through the real machinery — the
//! order is applied to the tree ([`apply_order`]) and the reordered tree
//! is solved by [`crate::tree`]'s equal-finish reduction (which on a
//! degenerate path is exactly [`crate::linear`]'s solution) — so
//! makespans are the true fixed-order equal-finish optima, not proxies.
//!
//! The classical sequencing result (serve faster links first) predicts
//! the canonical order is globally optimal in this model: the oracle lets
//! experiment E29 *verify* that across the tree population rather than
//! assume it, and the mechanism layer (`mechanism::dls_tree`) uses
//! searched orders to test whether strategyproofness survives sequencing
//! optimization (it does for bid-independent frozen orders; it breaks for
//! bid-dependent ones — see E29 and DESIGN.md §15).

use crate::model::TreeNode;
use crate::tree;
use std::fmt;

/// A full service order for a tree: one permutation of child positions per
/// node, indexed by the node's **preorder index in the tree the order was
/// derived from**. `perms[i][k]` is the stored child position of node `i`
/// that is served `k`-th. Leaves carry empty permutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeOrder {
    /// Per-node child permutations in preorder.
    pub perms: Vec<Vec<usize>>,
}

impl TreeOrder {
    /// True iff this order fits `root`: one entry per preorder node, each
    /// a permutation of `0..fanout`.
    pub fn is_valid(&self, root: &TreeNode) -> bool {
        let fans = fanouts(root);
        if fans.len() != self.perms.len() {
            return false;
        }
        self.perms.iter().zip(&fans).all(|(perm, &f)| {
            let mut seen = perm.clone();
            seen.sort_unstable();
            perm.len() == f && seen.iter().copied().eq(0..f)
        })
    }
}

/// Preorder fanout of every node.
fn fanouts(root: &TreeNode) -> Vec<usize> {
    fn walk(node: &TreeNode, out: &mut Vec<usize>) {
        out.push(node.children.len());
        for (_, c) in &node.children {
            walk(c, out);
        }
    }
    let mut out = Vec::new();
    walk(root, &mut out);
    out
}

/// The identity order: children served in stored order.
pub fn identity_order(root: &TreeNode) -> TreeOrder {
    TreeOrder {
        perms: fanouts(root)
            .into_iter()
            .map(|f| (0..f).collect())
            .collect(),
    }
}

/// The canonical order: every node serves its children in ascending
/// link-rate order (stable for ties — equal links keep stored index
/// order, the contract [`crate::tree::canonicalize`] relies on).
pub fn canonical_order(root: &TreeNode) -> TreeOrder {
    fn walk(node: &TreeNode, out: &mut Vec<Vec<usize>>) {
        let mut perm: Vec<usize> = (0..node.children.len()).collect();
        perm.sort_by(|&a, &b| node.children[a].0.z.total_cmp(&node.children[b].0.z));
        out.push(perm);
        for (_, c) in &node.children {
            walk(c, out);
        }
    }
    let mut perms = Vec::new();
    walk(root, &mut perms);
    TreeOrder { perms }
}

/// Rebuild `root` with every node's children re-arranged per `order`.
/// Preorder indices in `order` refer to `root`'s preorder, not the
/// output's.
pub fn apply_order(root: &TreeNode, order: &TreeOrder) -> TreeNode {
    fn walk(node: &TreeNode, order: &TreeOrder, next: &mut usize) -> TreeNode {
        let id = *next;
        *next += 1;
        let perm = &order.perms[id];
        assert_eq!(
            perm.len(),
            node.children.len(),
            "order does not fit the tree at preorder node {id}"
        );
        // Rebuild subtrees in *original* preorder (the counter must advance
        // through the input tree's layout), then arrange them per the perm.
        let rebuilt: Vec<_> = node
            .children
            .iter()
            .map(|(l, c)| (*l, walk(c, order, next)))
            .collect();
        TreeNode {
            processor: node.processor,
            children: perm.iter().map(|&k| rebuilt[k].clone()).collect(),
        }
    }
    let mut next = 0;
    let out = walk(root, order, &mut next);
    assert_eq!(next, order.perms.len(), "order does not fit the tree");
    out
}

/// [`apply_order`] plus the preorder renumbering it induces:
/// `map[old] = new` maps `root`'s preorder indices to the reordered
/// tree's. The root always maps to itself.
pub fn apply_order_mapped(root: &TreeNode, order: &TreeOrder) -> (TreeNode, Vec<usize>) {
    // Tag each node with its original preorder index, reorder, then walk
    // the reordered shape assigning new preorder numbers.
    struct Tagged {
        old: usize,
        node: TreeNode,
        children_tags: Vec<Tagged>,
    }
    fn tag(node: &TreeNode, order: &TreeOrder, next: &mut usize) -> Tagged {
        let old = *next;
        *next += 1;
        let perm = &order.perms[old];
        assert_eq!(
            perm.len(),
            node.children.len(),
            "order does not fit the tree at preorder node {old}"
        );
        let rebuilt: Vec<Tagged> = node
            .children
            .iter()
            .map(|(_, c)| tag(c, order, next))
            .collect();
        let children_tags: Vec<Tagged> = perm.iter().map(|&k| clone_tag(&rebuilt[k])).collect();
        let children = perm
            .iter()
            .zip(&children_tags)
            .map(|(&k, t)| (node.children[k].0, t.node.clone()))
            .collect();
        Tagged {
            old,
            node: TreeNode {
                processor: node.processor,
                children,
            },
            children_tags,
        }
    }
    fn clone_tag(t: &Tagged) -> Tagged {
        Tagged {
            old: t.old,
            node: t.node.clone(),
            children_tags: t.children_tags.iter().map(clone_tag).collect(),
        }
    }
    fn renumber(t: &Tagged, next: &mut usize, map: &mut [usize]) {
        map[t.old] = *next;
        *next += 1;
        for c in &t.children_tags {
            renumber(c, next, map);
        }
    }
    let mut next = 0;
    let tagged = tag(root, order, &mut next);
    let n = next;
    let mut map = vec![0; n];
    let mut next = 0;
    renumber(&tagged, &mut next, &mut map);
    (tagged.node, map)
}

/// Equal-finish makespan of `root` when served per `order`, through the
/// real tree solver.
pub fn order_makespan(root: &TreeNode, order: &TreeOrder) -> f64 {
    tree::makespan(&apply_order(root, order))
}

/// Number of orderable nodes: children whose service position is a real
/// degree of freedom (i.e. children of nodes with fanout ≥ 2). A chain
/// has zero; a star of `m` children has `m`.
pub fn orderable_nodes(root: &TreeNode) -> usize {
    fanouts(root).into_iter().filter(|&f| f >= 2).sum()
}

/// Size of the order space, `∏ fanout_i!`, or `None` on `u128` overflow.
pub fn order_space_size(root: &TreeNode) -> Option<u128> {
    let mut total: u128 = 1;
    for f in fanouts(root) {
        for k in 2..=f as u128 {
            total = total.checked_mul(k)?;
        }
    }
    Some(total)
}

/// Typed refusal of an exhaustive enumeration whose order space exceeds
/// the caller's evaluation budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Size of the order space (`u128::MAX` when it overflows `u128`).
    pub required: u128,
    /// The evaluation budget the caller offered.
    pub budget: u64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "order space of {} permutation assignments exceeds the evaluation budget of {}",
            self.required, self.budget
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// Result of an order search (exhaustive or local).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The best order found (ties broken toward the first found, so the
    /// result is deterministic).
    pub best_order: TreeOrder,
    /// Its makespan.
    pub best_makespan: f64,
    /// The worst makespan seen (exhaustive: over the whole space).
    pub worst_makespan: f64,
    /// Number of orders evaluated through the tree solver.
    pub evaluated: u64,
}

/// Enumerate the entire order space and return the optimum — the oracle
/// that pins [`local_search`]. Refuses with [`BudgetExceeded`] when
/// `∏ fanout_i!` exceeds `budget` **before** evaluating anything.
pub fn exhaustive_search(root: &TreeNode, budget: u64) -> Result<SearchOutcome, BudgetExceeded> {
    let required = order_space_size(root).unwrap_or(u128::MAX);
    if required > budget as u128 {
        return Err(BudgetExceeded { required, budget });
    }
    let mut order = identity_order(root);
    let nodes: Vec<usize> = order
        .perms
        .iter()
        .enumerate()
        .filter(|(_, p)| p.len() >= 2)
        .map(|(i, _)| i)
        .collect();
    let mut best: Option<(TreeOrder, f64)> = None;
    let mut worst = f64::NEG_INFINITY;
    let mut evaluated = 0u64;
    // Odometer over the orderable nodes: recursively generate each node's
    // permutations by prefix swaps, then move to the next node.
    fn enum_nodes(
        root: &TreeNode,
        nodes: &[usize],
        k: usize,
        order: &mut TreeOrder,
        visit: &mut dyn FnMut(&TreeNode, &TreeOrder),
    ) {
        if k == nodes.len() {
            visit(root, order);
            return;
        }
        enum_perm(root, nodes, k, 0, order, visit);
    }
    fn enum_perm(
        root: &TreeNode,
        nodes: &[usize],
        k: usize,
        pos: usize,
        order: &mut TreeOrder,
        visit: &mut dyn FnMut(&TreeNode, &TreeOrder),
    ) {
        let id = nodes[k];
        let len = order.perms[id].len();
        if pos == len {
            enum_nodes(root, nodes, k + 1, order, visit);
            return;
        }
        for i in pos..len {
            order.perms[id].swap(pos, i);
            enum_perm(root, nodes, k, pos + 1, order, visit);
            order.perms[id].swap(pos, i);
        }
    }
    enum_nodes(root, &nodes, 0, &mut order, &mut |root, order| {
        let ms = order_makespan(root, order);
        evaluated += 1;
        if best.as_ref().is_none_or(|(_, b)| ms < *b) {
            best = Some((order.clone(), ms));
        }
        worst = worst.max(ms);
    });
    let (best_order, best_makespan) = best.expect("order space is never empty");
    Ok(SearchOutcome {
        best_order,
        best_makespan,
        worst_makespan: worst,
        evaluated,
    })
}

/// Configuration of the seeded deterministic local search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalSearchConfig {
    /// Seed of the restart stream. Identical seeds replay byte-for-byte.
    pub seed: u64,
    /// Random restarts beyond the canonical one (restart 0 always starts
    /// from the canonical ascending-link order).
    pub restarts: usize,
    /// Cap on descent steps per restart.
    pub max_steps: usize,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        Self {
            seed: 0x5E9_5EA8C,
            restarts: 3,
            max_steps: 200,
        }
    }
}

/// Result of [`local_search`], with the canonical makespan alongside for
/// gain accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalSearchOutcome {
    /// The best order found.
    pub best_order: TreeOrder,
    /// Its makespan — never above `canonical_makespan`.
    pub best_makespan: f64,
    /// Makespan of the canonical ascending-link order.
    pub canonical_makespan: f64,
    /// Orders evaluated through the tree solver, across all restarts.
    pub evaluated: u64,
    /// Descent steps actually taken, across all restarts.
    pub steps: u64,
}

/// SplitMix64 — the module's only randomness, so the search carries no RNG
/// dependency and a fixed seed replays exactly.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded uniformly random order (per-node Fisher–Yates).
fn shuffled_order(root: &TreeNode, state: &mut u64) -> TreeOrder {
    let mut order = identity_order(root);
    for perm in &mut order.perms {
        for i in (1..perm.len()).rev() {
            let j = (splitmix64(state) % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
    }
    order
}

/// Seeded deterministic local search: steepest descent over the
/// adjacent-swap + subtree-reorder neighborhood, restarted from seeded
/// random orders. Restart 0 descends from the canonical ascending-link
/// order, so `best_makespan ≤ canonical_makespan` holds unconditionally.
pub fn local_search(root: &TreeNode, cfg: &LocalSearchConfig) -> LocalSearchOutcome {
    let canonical = canonical_order(root);
    let canonical_makespan = order_makespan(root, &canonical);
    let mut evaluated = 1u64;
    let mut steps = 0u64;
    let mut best_order = canonical.clone();
    let mut best_makespan = canonical_makespan;
    let mut state = cfg.seed ^ 0x0DD0_5EA8;
    for restart in 0..=cfg.restarts {
        let mut cur = if restart == 0 {
            canonical.clone()
        } else {
            shuffled_order(root, &mut state)
        };
        let mut cur_ms = if restart == 0 {
            canonical_makespan
        } else {
            evaluated += 1;
            order_makespan(root, &cur)
        };
        for _ in 0..cfg.max_steps {
            let mut improved: Option<(TreeOrder, f64)> = None;
            let mut consider = |cand: TreeOrder, root: &TreeNode, evaluated: &mut u64| {
                let ms = order_makespan(root, &cand);
                *evaluated += 1;
                if ms < cur_ms && improved.as_ref().is_none_or(|(_, b)| ms < *b) {
                    improved = Some((cand, ms));
                }
            };
            for i in 0..cur.perms.len() {
                let f = cur.perms[i].len();
                if f < 2 {
                    continue;
                }
                // Adjacent swaps within node i's service permutation.
                for k in 0..f - 1 {
                    let mut cand = cur.clone();
                    cand.perms[i].swap(k, k + 1);
                    consider(cand, root, &mut evaluated);
                }
                // Subtree reorder: reset node i's permutation to its
                // canonical ascending-link order in one move.
                if cur.perms[i] != canonical.perms[i] {
                    let mut cand = cur.clone();
                    cand.perms[i] = canonical.perms[i].clone();
                    consider(cand, root, &mut evaluated);
                }
            }
            match improved {
                Some((next, ms)) => {
                    cur = next;
                    cur_ms = ms;
                    steps += 1;
                }
                None => break,
            }
        }
        if cur_ms < best_makespan {
            best_order = cur;
            best_makespan = cur_ms;
        }
    }
    LocalSearchOutcome {
        best_order,
        best_makespan,
        canonical_makespan,
        evaluated,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear;
    use crate::model::LinearNetwork;

    fn branchy() -> TreeNode {
        TreeNode::internal(
            1.1,
            vec![
                (
                    0.4,
                    TreeNode::internal(
                        1.6,
                        vec![(0.3, TreeNode::leaf(2.0)), (0.1, TreeNode::leaf(0.8))],
                    ),
                ),
                (0.05, TreeNode::leaf(2.5)),
                (0.2, TreeNode::leaf(1.4)),
            ],
        )
    }

    #[test]
    fn identity_order_round_trips_the_tree() {
        let t = branchy();
        let order = identity_order(&t);
        assert!(order.is_valid(&t));
        assert_eq!(apply_order(&t, &order), t);
    }

    #[test]
    fn canonical_order_sorts_each_node_by_link_rate() {
        let t = branchy();
        let order = canonical_order(&t);
        // Root links are 0.4, 0.05, 0.2 → serve 1, 2, 0.
        assert_eq!(order.perms[0], vec![1, 2, 0]);
        // The internal node's links are 0.3, 0.1 → serve 1, 0.
        assert_eq!(order.perms[1], vec![1, 0]);
        let ordered = apply_order(&t, &order);
        assert_eq!(ordered, tree::canonicalize(&t));
    }

    #[test]
    fn canonical_order_is_stable_on_equal_links() {
        let t = TreeNode::internal(
            1.0,
            vec![
                (0.3, TreeNode::leaf(2.0)),
                (0.3, TreeNode::leaf(0.5)),
                (0.3, TreeNode::leaf(1.2)),
            ],
        );
        assert_eq!(canonical_order(&t).perms[0], vec![0, 1, 2]);
    }

    #[test]
    fn apply_order_mapped_tracks_preorder_renumbering() {
        let t = branchy();
        // Preorder: 0 root, 1 internal, 2 leaf(2.0), 3 leaf(0.8),
        // 4 leaf(2.5), 5 leaf(1.4).
        let order = canonical_order(&t);
        let (ordered, map) = apply_order_mapped(&t, &order);
        assert_eq!(ordered, apply_order(&t, &order));
        // Service order at root: leaf(2.5), leaf(1.4), internal subtree;
        // inside the subtree: leaf(0.8) before leaf(2.0).
        assert_eq!(map, vec![0, 3, 5, 4, 1, 2]);
    }

    #[test]
    fn chains_have_a_trivial_order_space() {
        let net = LinearNetwork::from_rates(&[1.0, 2.0, 0.5, 4.0], &[0.2, 0.1, 0.7]);
        let t = TreeNode::from_chain(&net);
        assert_eq!(orderable_nodes(&t), 0);
        assert_eq!(order_space_size(&t), Some(1));
        let search = exhaustive_search(&t, 1).expect("one evaluation");
        assert_eq!(search.evaluated, 1);
        assert!((search.best_makespan - linear::solve(&net).makespan()).abs() < 1e-12);
        let local = local_search(&t, &LocalSearchConfig::default());
        assert_eq!(local.best_makespan, search.best_makespan);
    }

    #[test]
    fn exhaustive_covers_the_product_space() {
        let t = branchy();
        // Root fanout 3, internal fanout 2 → 3! · 2! = 12 orders.
        assert_eq!(order_space_size(&t), Some(12));
        assert_eq!(orderable_nodes(&t), 5);
        let search = exhaustive_search(&t, 12).expect("within budget");
        assert_eq!(search.evaluated, 12);
        assert!(search.best_makespan <= search.worst_makespan);
        assert!(search.best_order.is_valid(&t));
    }

    #[test]
    fn exhaustive_optimum_is_the_canonical_order_makespan() {
        let t = branchy();
        let search = exhaustive_search(&t, 1_000).unwrap();
        let canon = order_makespan(&t, &canonical_order(&t));
        assert!(
            canon <= search.best_makespan + 1e-12,
            "classical sequencing: canonical {canon} vs oracle {}",
            search.best_makespan
        );
    }

    #[test]
    fn budget_guard_refuses_before_evaluating() {
        let t = branchy();
        let err = exhaustive_search(&t, 11).unwrap_err();
        assert_eq!(
            err,
            BudgetExceeded {
                required: 12,
                budget: 11
            }
        );
        assert!(err.to_string().contains("exceeds the evaluation budget"));
    }

    #[test]
    fn order_space_size_overflows_to_none() {
        let children = (0..40)
            .map(|i| (0.1 + 0.01 * i as f64, TreeNode::leaf(1.0)))
            .collect();
        let wide = TreeNode::internal(1.0, children);
        assert_eq!(order_space_size(&wide), None);
        let err = exhaustive_search(&wide, u64::MAX).unwrap_err();
        assert_eq!(err.required, u128::MAX);
    }

    #[test]
    fn local_search_never_loses_to_canonical_and_matches_oracle_here() {
        let t = branchy();
        let local = local_search(&t, &LocalSearchConfig::default());
        assert!(local.best_makespan <= local.canonical_makespan + 1e-15);
        let oracle = exhaustive_search(&t, 1_000).unwrap();
        assert!(
            (local.best_makespan - oracle.best_makespan).abs() < 1e-12,
            "local {} vs oracle {}",
            local.best_makespan,
            oracle.best_makespan
        );
    }

    #[test]
    fn local_search_replays_byte_identically() {
        let t = branchy();
        let cfg = LocalSearchConfig {
            seed: 42,
            restarts: 5,
            max_steps: 50,
        };
        let a = local_search(&t, &cfg);
        let b = local_search(&t, &cfg);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn local_search_descends_from_a_bad_random_start() {
        // With zero restarts beyond canonical the guarantee still holds;
        // with restarts the descent must repair shuffled starts back to
        // the optimum on this small instance.
        let t = branchy();
        let cfg = LocalSearchConfig {
            seed: 7,
            restarts: 8,
            max_steps: 100,
        };
        let local = local_search(&t, &cfg);
        let oracle = exhaustive_search(&t, 1_000).unwrap();
        assert!((local.best_makespan - oracle.best_makespan).abs() < 1e-12);
        assert!(local.steps > 0, "shuffled restarts should need descent");
    }
}
