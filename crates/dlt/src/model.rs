//! Core model types shared by every solver: processors, links, networks and
//! load allocations.
//!
//! The vocabulary follows Carroll & Grosu (IPPS 2007) and the underlying DLT
//! literature (Bharadwaj et al., 1996):
//!
//! * `w_i` — time taken by processor `P_i` to process one unit of load
//!   (smaller is faster).
//! * `z_j` — time taken to transmit one unit of load over link `ℓ_j`
//!   connecting `P_{j-1}` to `P_j`.
//! * `α_i` — the fraction of the (unit) total load assigned to `P_i`.
//! * `α̂_i` — the *local* allocation: the fraction of the load *received* by
//!   `P_i` that it retains for itself (the rest is forwarded).
//! * `D_i` — the amount of load received by `P_i` (`D_0 = 1`).

use std::fmt;

/// Numerical tolerance used by validators and equality checks on `f64`
/// quantities derived from allocations.
pub const EPSILON: f64 = 1e-9;

/// A processor characterized by its unit processing time `w` (the time it
/// takes to compute one unit of load). `w` must be strictly positive and
/// finite: a zero-time processor would absorb the entire load and break every
/// closed form in the theory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Processor {
    /// Unit processing time (`w_i` in the paper). Smaller is faster.
    pub w: f64,
}

impl Processor {
    /// Create a processor with unit processing time `w`.
    ///
    /// # Panics
    /// Panics if `w` is not strictly positive and finite.
    pub fn new(w: f64) -> Self {
        assert!(
            w.is_finite() && w > 0.0,
            "processor rate must be positive and finite, got {w}"
        );
        Self { w }
    }

    /// Time to process `load` units at this processor.
    #[inline]
    pub fn compute_time(&self, load: f64) -> f64 {
        load * self.w
    }
}

/// A communication link characterized by its unit transmission time `z` (the
/// time it takes to move one unit of load across the link).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Unit transmission time (`z_j` in the paper). Smaller is faster.
    pub z: f64,
}

impl Link {
    /// Create a link with unit transmission time `z`.
    ///
    /// # Panics
    /// Panics if `z` is negative, NaN or infinite. `z == 0` (an infinitely
    /// fast link) is permitted; it models co-located processors.
    pub fn new(z: f64) -> Self {
        assert!(
            z.is_finite() && z >= 0.0,
            "link rate must be non-negative and finite, got {z}"
        );
        Self { z }
    }

    /// Time to transmit `load` units across this link.
    #[inline]
    pub fn transmit_time(&self, load: f64) -> f64 {
        load * self.z
    }
}

/// A linear (chain) network of `m + 1` processors `P_0 … P_m` connected by
/// `m` links, with the load originating at the *boundary* processor `P_0`.
///
/// ```text
/// P_0 --ℓ_1-- P_1 --ℓ_2-- P_2 -- … --ℓ_m-- P_m
/// ```
///
/// This is the network of Figure 1 in the paper. `links[j]` is `ℓ_{j+1}`,
/// i.e. the link *into* `processors[j + 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearNetwork {
    processors: Vec<Processor>,
    links: Vec<Link>,
}

impl LinearNetwork {
    /// Build a linear network from explicit processors and links.
    ///
    /// # Panics
    /// Panics if there are no processors or if `links.len() + 1 !=
    /// processors.len()`.
    pub fn new(processors: Vec<Processor>, links: Vec<Link>) -> Self {
        assert!(
            !processors.is_empty(),
            "a network needs at least one processor"
        );
        assert_eq!(
            links.len() + 1,
            processors.len(),
            "a chain of n processors has n-1 links (got {} processors, {} links)",
            processors.len(),
            links.len()
        );
        Self { processors, links }
    }

    /// Convenience constructor from raw rates: `w[i]` are unit processing
    /// times and `z[j]` are unit link times (`z\[0\]` is the link `P_0 → P_1`).
    pub fn from_rates(w: &[f64], z: &[f64]) -> Self {
        Self::new(
            w.iter().copied().map(Processor::new).collect(),
            z.iter().copied().map(Link::new).collect(),
        )
    }

    /// A homogeneous chain: `n` processors of rate `w` joined by links of
    /// rate `z`.
    pub fn homogeneous(n: usize, w: f64, z: f64) -> Self {
        assert!(n >= 1);
        Self::new(vec![Processor::new(w); n], vec![Link::new(z); n - 1])
    }

    /// Number of processors (`m + 1`).
    #[inline]
    pub fn len(&self) -> usize {
        self.processors.len()
    }

    /// True if the network consists of a single processor.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false // by construction there is always at least one processor
    }

    /// The index `m` of the terminal processor.
    #[inline]
    pub fn last_index(&self) -> usize {
        self.processors.len() - 1
    }

    /// All processors, root first.
    #[inline]
    pub fn processors(&self) -> &[Processor] {
        &self.processors
    }

    /// All links; `links()[j]` connects `P_j` to `P_{j+1}`.
    #[inline]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Unit processing time of `P_i`.
    #[inline]
    pub fn w(&self, i: usize) -> f64 {
        self.processors[i].w
    }

    /// Unit transmission time of the link into `P_j` (`z_j`, `j ≥ 1`).
    ///
    /// # Panics
    /// Panics if `j == 0`: there is no link into the root.
    #[inline]
    pub fn z(&self, j: usize) -> f64 {
        assert!(j >= 1, "z_j is defined for j >= 1 (link into P_j)");
        self.links[j - 1].z
    }

    /// The sub-chain `P_i … P_m` viewed as a network of its own (used by the
    /// reduction machinery and by per-agent payment computations).
    pub fn suffix(&self, i: usize) -> LinearNetwork {
        assert!(i < self.processors.len());
        LinearNetwork {
            processors: self.processors[i..].to_vec(),
            links: self.links[i..].to_vec(),
        }
    }

    /// The sub-chain `P_i … P_j` (inclusive) viewed as a network of its own.
    pub fn segment(&self, i: usize, j: usize) -> LinearNetwork {
        assert!(i <= j && j < self.processors.len());
        LinearNetwork {
            processors: self.processors[i..=j].to_vec(),
            links: self.links[i..j].to_vec(),
        }
    }

    /// Return a copy of the network with `P_i`'s unit processing time
    /// replaced by `w`. Used by bid sweeps.
    pub fn with_processor_rate(&self, i: usize, w: f64) -> LinearNetwork {
        let mut n = self.clone();
        n.processors[i] = Processor::new(w);
        n
    }

    /// Vector of unit processing times.
    pub fn rates_w(&self) -> Vec<f64> {
        self.processors.iter().map(|p| p.w).collect()
    }

    /// Vector of unit link times (`z_1 … z_m`).
    pub fn rates_z(&self) -> Vec<f64> {
        self.links.iter().map(|l| l.z).collect()
    }
}

impl fmt::Display for LinearNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P0(w={})", self.processors[0].w)?;
        for (j, (link, p)) in self.links.iter().zip(&self.processors[1..]).enumerate() {
            write!(f, " --z{}={}-- P{}(w={})", j + 1, link.z, j + 1, p.w)?;
        }
        Ok(())
    }
}

/// A star (single-level tree) network: a root `P_0` directly connected to
/// `m` children `P_1 … P_m` by dedicated links. The *bus* network is the
/// special case where every link has the same rate.
///
/// The root distributes the children's shares sequentially (one-port model)
/// in index order while computing its own share (front-end model).
#[derive(Debug, Clone, PartialEq)]
pub struct StarNetwork {
    root: Processor,
    children: Vec<(Link, Processor)>,
}

impl StarNetwork {
    /// Build a star from a root and `(link, child)` pairs in distribution
    /// order.
    pub fn new(root: Processor, children: Vec<(Link, Processor)>) -> Self {
        Self { root, children }
    }

    /// Build a star from raw rates. `w\[0\]` is the root, `w[i]` (`i ≥ 1`) the
    /// children; `z[i-1]` is the link to child `i`.
    pub fn from_rates(w: &[f64], z: &[f64]) -> Self {
        assert!(!w.is_empty());
        assert_eq!(w.len() - 1, z.len());
        Self {
            root: Processor::new(w[0]),
            children: z
                .iter()
                .zip(&w[1..])
                .map(|(&z, &w)| (Link::new(z), Processor::new(w)))
                .collect(),
        }
    }

    /// A bus network: star with a single shared bus rate `z` for all `n_children` children.
    pub fn bus(root_w: f64, child_w: &[f64], bus_z: f64) -> Self {
        Self {
            root: Processor::new(root_w),
            children: child_w
                .iter()
                .map(|&w| (Link::new(bus_z), Processor::new(w)))
                .collect(),
        }
    }

    /// The root processor.
    #[inline]
    pub fn root(&self) -> Processor {
        self.root
    }

    /// The `(link, child)` pairs in distribution order.
    #[inline]
    pub fn children(&self) -> &[(Link, Processor)] {
        &self.children
    }

    /// Total number of processors (root + children).
    #[inline]
    pub fn len(&self) -> usize {
        self.children.len() + 1
    }

    /// True if the star has no children.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }
}

/// A node of a tree network: a processor plus the links to its subtrees.
/// The root of the whole tree originates the load. Children are served in
/// the stored order (one-port, front-end semantics at every internal node).
#[derive(Debug, Clone, PartialEq)]
pub struct TreeNode {
    /// The processor at this node.
    pub processor: Processor,
    /// `(link to child, child subtree)` pairs in distribution order.
    pub children: Vec<(Link, TreeNode)>,
}

impl TreeNode {
    /// A leaf node.
    pub fn leaf(w: f64) -> Self {
        Self {
            processor: Processor::new(w),
            children: Vec::new(),
        }
    }

    /// An internal node with explicit children.
    pub fn internal(w: f64, children: Vec<(f64, TreeNode)>) -> Self {
        Self {
            processor: Processor::new(w),
            children: children
                .into_iter()
                .map(|(z, c)| (Link::new(z), c))
                .collect(),
        }
    }

    /// Number of processors in the subtree rooted here.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(|(_, c)| c.size()).sum::<usize>()
    }

    /// Depth of the subtree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(|(_, c)| c.depth())
            .max()
            .unwrap_or(0)
    }

    /// Build a linear chain as a degenerate tree (each node has one child).
    /// `P_0` is the root. Provided so the tree solver can be cross-checked
    /// against the dedicated chain solver.
    pub fn from_chain(net: &LinearNetwork) -> Self {
        let mut node = TreeNode::leaf(net.w(net.last_index()));
        for i in (0..net.last_index()).rev() {
            node = TreeNode {
                processor: Processor::new(net.w(i)),
                children: vec![(Link::new(net.z(i + 1)), node)],
            };
        }
        node
    }
}

/// A load allocation: the fraction of the unit load assigned to each
/// processor, in network order. Produced by every solver in this crate.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    fractions: Vec<f64>,
}

impl Allocation {
    /// Wrap raw fractions. Use [`Allocation::validate`] to check feasibility.
    pub fn new(fractions: Vec<f64>) -> Self {
        Self { fractions }
    }

    /// The fraction assigned to processor `i`.
    #[inline]
    pub fn alpha(&self, i: usize) -> f64 {
        self.fractions[i]
    }

    /// All fractions in network order.
    #[inline]
    pub fn fractions(&self) -> &[f64] {
        &self.fractions
    }

    /// Number of processors covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.fractions.len()
    }

    /// True if the allocation covers no processors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.fractions.is_empty()
    }

    /// Checks feasibility: every fraction non-negative and the total equal
    /// to one within [`EPSILON`].
    pub fn validate(&self) -> Result<(), AllocationError> {
        for (i, &a) in self.fractions.iter().enumerate() {
            if !a.is_finite() {
                return Err(AllocationError::NotFinite { index: i, value: a });
            }
            if a < -EPSILON {
                return Err(AllocationError::Negative { index: i, value: a });
            }
        }
        let total: f64 = self.fractions.iter().sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(AllocationError::BadTotal { total });
        }
        Ok(())
    }

    /// The amount of load `D_i` *received* by processor `i` in a chain:
    /// `D_0 = 1`, `D_j = 1 - Σ_{k<j} α_k`.
    pub fn received(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.fractions.len());
        let mut remaining = 1.0;
        for &a in &self.fractions {
            out.push(remaining);
            remaining -= a;
        }
        out
    }

    /// Convert the global allocation `α` into the local allocation `α̂`
    /// (fraction of *received* load retained) for a chain, per eqs. 2.5–2.6.
    /// For processors that receive (numerically) zero load the local
    /// fraction is defined as 1 (they would keep everything they get).
    pub fn to_local(&self) -> LocalAllocation {
        let mut local = Vec::with_capacity(self.fractions.len());
        let mut remaining = 1.0;
        for &a in &self.fractions {
            if remaining <= EPSILON {
                local.push(1.0);
            } else {
                local.push((a / remaining).clamp(0.0, 1.0));
            }
            remaining -= a;
        }
        LocalAllocation { fractions: local }
    }
}

/// Errors produced by [`Allocation::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum AllocationError {
    /// A fraction is NaN or infinite.
    NotFinite {
        /// Processor index.
        index: usize,
        /// Offending value.
        value: f64,
    },
    /// A fraction is negative beyond tolerance.
    Negative {
        /// Processor index.
        index: usize,
        /// Offending value.
        value: f64,
    },
    /// The fractions do not sum to one.
    BadTotal {
        /// The observed total.
        total: f64,
    },
}

impl fmt::Display for AllocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocationError::NotFinite { index, value } => {
                write!(f, "allocation α_{index} = {value} is not finite")
            }
            AllocationError::Negative { index, value } => {
                write!(f, "allocation α_{index} = {value} is negative")
            }
            AllocationError::BadTotal { total } => {
                write!(f, "allocation sums to {total}, expected 1")
            }
        }
    }
}

impl std::error::Error for AllocationError {}

/// The local allocation vector `α̂`: `α̂_i` is the fraction of the load
/// *received* by `P_i` that it retains; the remainder `1 - α̂_i` is forwarded
/// to its successor. `α̂_m = 1` always (the terminal processor keeps all).
#[derive(Debug, Clone, PartialEq)]
pub struct LocalAllocation {
    fractions: Vec<f64>,
}

impl LocalAllocation {
    /// Wrap raw local fractions.
    pub fn new(fractions: Vec<f64>) -> Self {
        Self { fractions }
    }

    /// Local retained fraction `α̂_i`.
    #[inline]
    pub fn alpha_hat(&self, i: usize) -> f64 {
        self.fractions[i]
    }

    /// All local fractions.
    #[inline]
    pub fn fractions(&self) -> &[f64] {
        &self.fractions
    }

    /// Number of processors covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.fractions.len()
    }

    /// True if no processors are covered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.fractions.is_empty()
    }

    /// Convert the local allocation back to the global allocation `α` via
    /// eqs. 2.5–2.6: `α_0 = α̂_0`, `α_j = Π_{k<j}(1-α̂_k) · α̂_j`.
    pub fn to_global(&self) -> Allocation {
        let mut out = Vec::with_capacity(self.fractions.len());
        let mut carried = 1.0;
        for &ah in &self.fractions {
            out.push(carried * ah);
            carried *= 1.0 - ah;
        }
        Allocation::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processor_compute_time_is_linear() {
        let p = Processor::new(2.5);
        assert_eq!(p.compute_time(0.0), 0.0);
        assert_eq!(p.compute_time(2.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn processor_rejects_zero_rate() {
        Processor::new(0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn processor_rejects_nan() {
        Processor::new(f64::NAN);
    }

    #[test]
    fn link_allows_zero_rate() {
        let l = Link::new(0.0);
        assert_eq!(l.transmit_time(5.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn link_rejects_negative_rate() {
        Link::new(-1.0);
    }

    #[test]
    fn linear_network_accessors() {
        let net = LinearNetwork::from_rates(&[1.0, 2.0, 3.0], &[0.5, 0.25]);
        assert_eq!(net.len(), 3);
        assert_eq!(net.last_index(), 2);
        assert_eq!(net.w(0), 1.0);
        assert_eq!(net.w(2), 3.0);
        assert_eq!(net.z(1), 0.5);
        assert_eq!(net.z(2), 0.25);
    }

    #[test]
    #[should_panic]
    fn linear_network_z0_is_undefined() {
        let net = LinearNetwork::from_rates(&[1.0, 2.0], &[0.5]);
        net.z(0);
    }

    #[test]
    #[should_panic(expected = "n-1 links")]
    fn linear_network_rejects_bad_link_count() {
        LinearNetwork::from_rates(&[1.0, 2.0], &[0.5, 0.5]);
    }

    #[test]
    fn linear_network_suffix_and_segment() {
        let net = LinearNetwork::from_rates(&[1.0, 2.0, 3.0, 4.0], &[0.1, 0.2, 0.3]);
        let sfx = net.suffix(2);
        assert_eq!(sfx.len(), 2);
        assert_eq!(sfx.w(0), 3.0);
        assert_eq!(sfx.z(1), 0.3);
        let seg = net.segment(1, 2);
        assert_eq!(seg.len(), 2);
        assert_eq!(seg.w(0), 2.0);
        assert_eq!(seg.z(1), 0.2);
    }

    #[test]
    fn homogeneous_chain() {
        let net = LinearNetwork::homogeneous(5, 1.5, 0.2);
        assert_eq!(net.len(), 5);
        assert!(net.processors().iter().all(|p| p.w == 1.5));
        assert!(net.links().iter().all(|l| l.z == 0.2));
    }

    #[test]
    fn single_processor_chain_has_no_links() {
        let net = LinearNetwork::homogeneous(1, 2.0, 0.0);
        assert_eq!(net.len(), 1);
        assert!(net.links().is_empty());
    }

    #[test]
    fn with_processor_rate_replaces_only_target() {
        let net = LinearNetwork::from_rates(&[1.0, 2.0, 3.0], &[0.5, 0.25]);
        let net2 = net.with_processor_rate(1, 9.0);
        assert_eq!(net2.w(1), 9.0);
        assert_eq!(net2.w(0), 1.0);
        assert_eq!(net2.w(2), 3.0);
        assert_eq!(net.w(1), 2.0, "original untouched");
    }

    #[test]
    fn allocation_validate_accepts_feasible() {
        let a = Allocation::new(vec![0.5, 0.3, 0.2]);
        assert!(a.validate().is_ok());
    }

    #[test]
    fn allocation_validate_rejects_negative() {
        let a = Allocation::new(vec![0.5, -0.3, 0.8]);
        assert!(matches!(
            a.validate(),
            Err(AllocationError::Negative { index: 1, .. })
        ));
    }

    #[test]
    fn allocation_validate_rejects_bad_total() {
        let a = Allocation::new(vec![0.5, 0.3]);
        assert!(matches!(
            a.validate(),
            Err(AllocationError::BadTotal { .. })
        ));
    }

    #[test]
    fn allocation_validate_rejects_nan() {
        let a = Allocation::new(vec![f64::NAN, 1.0]);
        assert!(matches!(
            a.validate(),
            Err(AllocationError::NotFinite { index: 0, .. })
        ));
    }

    #[test]
    fn received_load_is_cumulative_remainder() {
        let a = Allocation::new(vec![0.5, 0.3, 0.2]);
        let d = a.received();
        assert!((d[0] - 1.0).abs() < EPSILON);
        assert!((d[1] - 0.5).abs() < EPSILON);
        assert!((d[2] - 0.2).abs() < EPSILON);
    }

    #[test]
    fn local_global_round_trip() {
        let a = Allocation::new(vec![0.4, 0.36, 0.24]);
        let local = a.to_local();
        assert!(
            (local.alpha_hat(2) - 1.0).abs() < EPSILON,
            "terminal keeps all"
        );
        let back = local.to_global();
        for i in 0..3 {
            assert!((back.alpha(i) - a.alpha(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn local_to_global_eq_25_26() {
        // α̂ = (0.5, 0.5, 1.0) → α = (0.5, 0.25, 0.25)
        let local = LocalAllocation::new(vec![0.5, 0.5, 1.0]);
        let g = local.to_global();
        assert!((g.alpha(0) - 0.5).abs() < EPSILON);
        assert!((g.alpha(1) - 0.25).abs() < EPSILON);
        assert!((g.alpha(2) - 0.25).abs() < EPSILON);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn tree_from_chain_preserves_structure() {
        let net = LinearNetwork::from_rates(&[1.0, 2.0, 3.0], &[0.5, 0.25]);
        let tree = TreeNode::from_chain(&net);
        assert_eq!(tree.size(), 3);
        assert_eq!(tree.depth(), 3);
        assert_eq!(tree.processor.w, 1.0);
        let (l1, c1) = &tree.children[0];
        assert_eq!(l1.z, 0.5);
        assert_eq!(c1.processor.w, 2.0);
        let (l2, c2) = &c1.children[0];
        assert_eq!(l2.z, 0.25);
        assert_eq!(c2.processor.w, 3.0);
        assert!(c2.children.is_empty());
    }

    #[test]
    fn star_from_rates() {
        let s = StarNetwork::from_rates(&[1.0, 2.0, 3.0], &[0.1, 0.2]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.root().w, 1.0);
        assert_eq!(s.children()[1].0.z, 0.2);
        assert_eq!(s.children()[1].1.w, 3.0);
    }

    #[test]
    fn bus_is_uniform_star() {
        let b = StarNetwork::bus(1.0, &[2.0, 2.0, 2.0], 0.3);
        assert!(b.children().iter().all(|(l, _)| l.z == 0.3));
    }

    #[test]
    fn display_is_readable() {
        let net = LinearNetwork::from_rates(&[1.0, 2.0], &[0.5]);
        let s = format!("{net}");
        assert!(s.contains("P0(w=1)"));
        assert!(s.contains("z1=0.5"));
    }
}
