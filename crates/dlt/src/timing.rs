//! Analytic timing model for chain execution (eqs. 2.1–2.2 of the paper).
//!
//! The chain operates under the *one-port*, *front-end*, store-and-forward
//! model of Figure 2: `P_0` starts computing its share `α_0` at time zero
//! while simultaneously transmitting the remainder `D_1 = 1 - α_0` to `P_1`;
//! `P_1` must receive its entire delivery before it starts computing and
//! forwarding, and so on down the chain. Communication of `D_j` units over
//! link `ℓ_j` takes `D_j · z_j`.

use crate::model::{Allocation, LinearNetwork, EPSILON};

/// The finish time `T_i(α)` of processor `P_i` per eqs. 2.1–2.2:
///
/// * `T_0 = α_0 · w_0`
/// * `T_j = Σ_{k=1}^{j} D_k z_k + α_j w_j` for `α_j > 0`, else `0`,
///
/// where `D_k = 1 - Σ_{ℓ<k} α_ℓ` is the load forwarded over link `ℓ_k`.
pub fn finish_time(net: &LinearNetwork, alloc: &Allocation, i: usize) -> f64 {
    assert_eq!(net.len(), alloc.len(), "allocation/network size mismatch");
    assert!(i < net.len());
    if i == 0 {
        return alloc.alpha(0) * net.w(0);
    }
    if alloc.alpha(i) <= 0.0 {
        return 0.0;
    }
    let mut remaining = 1.0;
    let mut comm = 0.0;
    for k in 1..=i {
        remaining -= alloc.alpha(k - 1); // D_k = 1 - Σ_{ℓ<k} α_ℓ
        comm += remaining * net.z(k);
    }
    comm + alloc.alpha(i) * net.w(i)
}

/// All finish times `T_0 … T_m` in a single O(m) pass.
pub fn finish_times(net: &LinearNetwork, alloc: &Allocation) -> Vec<f64> {
    assert_eq!(net.len(), alloc.len(), "allocation/network size mismatch");
    let m = net.last_index();
    let mut out = Vec::with_capacity(m + 1);
    out.push(alloc.alpha(0) * net.w(0));
    let mut remaining = 1.0;
    let mut comm = 0.0;
    for j in 1..=m {
        remaining -= alloc.alpha(j - 1);
        comm += remaining * net.z(j);
        if alloc.alpha(j) > 0.0 {
            out.push(comm + alloc.alpha(j) * net.w(j));
        } else {
            out.push(0.0);
        }
    }
    out
}

/// The makespan `T(α) = max_i T_i(α)`.
pub fn makespan(net: &LinearNetwork, alloc: &Allocation) -> f64 {
    finish_times(net, alloc).into_iter().fold(0.0, f64::max)
}

/// The spread `max_i T_i − min_{i: α_i>0} T_i` over *participating*
/// processors. Theorem 2.1 states this is zero at the optimum.
pub fn participation_spread(net: &LinearNetwork, alloc: &Allocation) -> f64 {
    let times = finish_times(net, alloc);
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (i, &t) in times.iter().enumerate() {
        if alloc.alpha(i) > EPSILON {
            lo = lo.min(t);
            hi = hi.max(t);
        }
    }
    if lo.is_infinite() {
        0.0
    } else {
        hi - lo
    }
}

/// One activity interval on a processor or link in the analytic schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Start time.
    pub start: f64,
    /// End time (`end ≥ start`).
    pub end: f64,
}

impl Interval {
    /// Construct an interval; panics if `end < start` beyond tolerance.
    pub fn new(start: f64, end: f64) -> Self {
        assert!(
            end >= start - EPSILON,
            "interval ends before it starts: [{start}, {end}]"
        );
        Self { start, end }
    }

    /// Interval duration.
    #[inline]
    pub fn duration(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }

    /// True if two intervals overlap by more than the tolerance.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end - EPSILON && other.start < self.end - EPSILON
    }
}

/// Per-processor activity in the closed-form chain schedule: when it
/// receives, computes, and forwards. This is the analytic counterpart of the
/// Gantt chart in Figure 2; the discrete-event simulator in the `sim` crate
/// must reproduce it exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorSchedule {
    /// Receiving interval on the inbound link (`None` for the root, which
    /// originates the load).
    pub receive: Option<Interval>,
    /// Computing interval (zero-length if the processor gets no load).
    pub compute: Interval,
    /// Forwarding interval on the outbound link (`None` for the terminal
    /// processor or when nothing is forwarded).
    pub send: Option<Interval>,
    /// Load retained (`α_i`).
    pub retained: f64,
    /// Load forwarded (`D_{i+1}`).
    pub forwarded: f64,
}

/// The full analytic schedule of a chain execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainSchedule {
    /// Per-processor activities, root first.
    pub processors: Vec<ProcessorSchedule>,
    /// Overall makespan.
    pub makespan: f64,
}

impl ChainSchedule {
    /// Build the analytic schedule for `alloc` on `net` (Figure 2 semantics).
    ///
    /// `P_i` finishes receiving at `R_i = Σ_{k=1}^{i} D_k z_k` (with
    /// `R_0 = 0`), computes during `[R_i, R_i + α_i w_i]`, and forwards
    /// during `[R_i, R_i + D_{i+1} z_{i+1}]` thanks to its front-end.
    pub fn analytic(net: &LinearNetwork, alloc: &Allocation) -> Self {
        assert_eq!(net.len(), alloc.len());
        let m = net.last_index();
        let received = alloc.received();
        let mut processors = Vec::with_capacity(m + 1);
        let mut recv_end = 0.0; // R_i
        for i in 0..=m {
            let receive = if i == 0 {
                None
            } else {
                let d_i = received[i];
                let start = recv_end - d_i * net.z(i);
                Some(Interval::new(start, recv_end))
            };
            let compute = Interval::new(recv_end, recv_end + alloc.alpha(i) * net.w(i));
            let forwarded = if i < m {
                received[i] - alloc.alpha(i)
            } else {
                0.0
            };
            let send = if i < m && forwarded > EPSILON {
                let dur = forwarded * net.z(i + 1);
                Some(Interval::new(recv_end, recv_end + dur))
            } else {
                None
            };
            if i < m {
                // successor finishes receiving when we finish sending
                let send_dur = forwarded.max(0.0) * net.z(i + 1);
                recv_end += send_dur;
            }
            processors.push(ProcessorSchedule {
                receive,
                compute,
                send,
                retained: alloc.alpha(i),
                forwarded,
            });
        }
        let makespan = processors.iter().map(|p| p.compute.end).fold(0.0, f64::max);
        Self {
            processors,
            makespan,
        }
    }

    /// Check internal consistency of the schedule against the closed-form
    /// finish times: each processor's compute end must equal `T_i(α)`
    /// whenever `α_i > 0`.
    pub fn matches_closed_form(&self, net: &LinearNetwork, alloc: &Allocation, tol: f64) -> bool {
        let times = finish_times(net, alloc);
        self.processors.iter().enumerate().all(|(i, p)| {
            if alloc.alpha(i) > EPSILON {
                (p.compute.end - times[i]).abs() <= tol
            } else {
                true
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_proc() -> (LinearNetwork, Allocation) {
        // w0=1, w1=1, z1=1. Optimal: α̂_0 = (1+1)/(1+1+1) = 2/3.
        let net = LinearNetwork::from_rates(&[1.0, 1.0], &[1.0]);
        let alloc = Allocation::new(vec![2.0 / 3.0, 1.0 / 3.0]);
        (net, alloc)
    }

    #[test]
    fn finish_time_root_eq_21() {
        let (net, alloc) = two_proc();
        assert!((finish_time(&net, &alloc, 0) - 2.0 / 3.0).abs() < EPSILON);
    }

    #[test]
    fn finish_time_successor_eq_22() {
        let (net, alloc) = two_proc();
        // T_1 = D_1 z_1 + α_1 w_1 = 1/3 + 1/3 = 2/3
        assert!((finish_time(&net, &alloc, 1) - 2.0 / 3.0).abs() < EPSILON);
    }

    #[test]
    fn finish_time_zero_allocation_is_zero() {
        let net = LinearNetwork::from_rates(&[1.0, 1.0], &[1.0]);
        let alloc = Allocation::new(vec![1.0, 0.0]);
        assert_eq!(finish_time(&net, &alloc, 1), 0.0);
    }

    #[test]
    fn finish_times_match_individual() {
        let net = LinearNetwork::from_rates(&[1.0, 2.0, 3.0], &[0.5, 0.25]);
        let alloc = Allocation::new(vec![0.5, 0.3, 0.2]);
        let all = finish_times(&net, &alloc);
        for i in 0..3 {
            assert!((all[i] - finish_time(&net, &alloc, i)).abs() < 1e-12);
        }
    }

    #[test]
    fn makespan_is_max_finish() {
        let net = LinearNetwork::from_rates(&[1.0, 2.0, 3.0], &[0.5, 0.25]);
        let alloc = Allocation::new(vec![0.5, 0.3, 0.2]);
        let ms = makespan(&net, &alloc);
        let times = finish_times(&net, &alloc);
        assert_eq!(ms, times.iter().copied().fold(0.0, f64::max));
    }

    #[test]
    fn spread_zero_for_balanced_two_proc() {
        let (net, alloc) = two_proc();
        assert!(participation_spread(&net, &alloc) < 1e-12);
    }

    #[test]
    fn spread_positive_for_unbalanced() {
        let net = LinearNetwork::from_rates(&[1.0, 1.0], &[1.0]);
        let alloc = Allocation::new(vec![0.9, 0.1]);
        assert!(participation_spread(&net, &alloc) > 0.1);
    }

    #[test]
    fn spread_ignores_nonparticipants() {
        let net = LinearNetwork::from_rates(&[1.0, 1.0], &[1.0]);
        let alloc = Allocation::new(vec![1.0, 0.0]);
        // only P_0 participates → spread over singleton is zero
        assert_eq!(participation_spread(&net, &alloc), 0.0);
    }

    #[test]
    fn analytic_schedule_figure2_shape() {
        let (net, alloc) = two_proc();
        let sched = ChainSchedule::analytic(&net, &alloc);
        let p0 = &sched.processors[0];
        let p1 = &sched.processors[1];
        assert!(p0.receive.is_none(), "root receives nothing");
        assert!(p1.send.is_none(), "terminal forwards nothing");
        // P_0 computes [0, 2/3], sends [0, 1/3]; P_1 receives [0,1/3], computes [1/3, 2/3].
        assert!((p0.compute.end - 2.0 / 3.0).abs() < EPSILON);
        let send = p0.send.expect("root sends");
        assert!((send.end - 1.0 / 3.0).abs() < EPSILON);
        let recv = p1.receive.expect("successor receives");
        assert!((recv.start - 0.0).abs() < EPSILON);
        assert!((recv.end - 1.0 / 3.0).abs() < EPSILON);
        assert!((p1.compute.start - 1.0 / 3.0).abs() < EPSILON);
        assert!((p1.compute.end - 2.0 / 3.0).abs() < EPSILON);
        assert!((sched.makespan - 2.0 / 3.0).abs() < EPSILON);
    }

    #[test]
    fn analytic_schedule_matches_closed_form_three_proc() {
        let net = LinearNetwork::from_rates(&[1.0, 2.0, 3.0], &[0.5, 0.25]);
        let alloc = Allocation::new(vec![0.5, 0.3, 0.2]);
        let sched = ChainSchedule::analytic(&net, &alloc);
        assert!(sched.matches_closed_form(&net, &alloc, 1e-12));
    }

    #[test]
    fn schedule_compute_follows_receive() {
        let net = LinearNetwork::from_rates(&[1.0, 2.0, 3.0, 4.0], &[0.4, 0.3, 0.2]);
        let alloc = Allocation::new(vec![0.4, 0.3, 0.2, 0.1]);
        let sched = ChainSchedule::analytic(&net, &alloc);
        for p in &sched.processors[1..] {
            let r = p.receive.expect("non-root receives");
            assert!(
                p.compute.start >= r.end - EPSILON,
                "compute cannot precede full receipt"
            );
        }
    }

    #[test]
    fn interval_overlap_detection() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(0.5, 2.0);
        let c = Interval::new(1.0, 2.0);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c), "touching intervals do not overlap");
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn interval_rejects_reversed() {
        Interval::new(1.0, 0.0);
    }
}
