//! Exact-rational version of the LINEAR BOUNDARY-LINEAR solver.
//!
//! Runs Algorithm 1 verbatim over [`Rational`] arithmetic, so the
//! equal-finish-time invariant of Theorem 2.1 can be asserted as an exact
//! identity rather than within floating-point tolerance, and the f64 solver
//! can be validated against ground truth.

use super::rational::Rational;
use crate::model::LinearNetwork;

/// A chain whose rates are exact rationals. `w.len() == z.len() + 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactChain {
    /// Unit processing times (all strictly positive).
    pub w: Vec<Rational>,
    /// Unit link times (`z[j]` joins `P_j` to `P_{j+1}`; non-negative).
    pub z: Vec<Rational>,
}

impl ExactChain {
    /// Build from rational rates.
    pub fn new(w: Vec<Rational>, z: Vec<Rational>) -> Self {
        assert!(!w.is_empty());
        assert_eq!(w.len(), z.len() + 1);
        assert!(
            w.iter().all(Rational::is_positive),
            "processor rates must be positive"
        );
        assert!(
            z.iter().all(|v| !v.is_negative()),
            "link rates must be non-negative"
        );
        Self { w, z }
    }

    /// Build from integer-valued rates scaled by `denom` (e.g. rates given
    /// in thousandths pass `denom = 1000`).
    pub fn from_scaled_ints(w: &[i64], z: &[i64], denom: u64) -> Self {
        Self::new(
            w.iter().map(|&v| Rational::from_ratio(v, denom)).collect(),
            z.iter().map(|&v| Rational::from_ratio(v, denom)).collect(),
        )
    }

    /// Number of processors.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// True if the chain is a single processor.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Lossy conversion to the f64 network model.
    pub fn to_f64_network(&self) -> LinearNetwork {
        LinearNetwork::from_rates(
            &self.w.iter().map(Rational::to_f64).collect::<Vec<_>>(),
            &self.z.iter().map(Rational::to_f64).collect::<Vec<_>>(),
        )
    }
}

/// Exact solution of the chain problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactSolution {
    /// Local fractions `α̂` (exact).
    pub local: Vec<Rational>,
    /// Global fractions `α` (exact; sums to exactly 1).
    pub alloc: Vec<Rational>,
    /// Equivalent times `w̄_i` (exact).
    pub equivalent: Vec<Rational>,
}

impl ExactSolution {
    /// The optimal makespan `w̄_0`.
    pub fn makespan(&self) -> &Rational {
        &self.equivalent[0]
    }
}

/// Algorithm 1 over exact rationals.
pub fn solve(chain: &ExactChain) -> ExactSolution {
    let m = chain.len() - 1;
    let one = Rational::one;
    let mut local = vec![Rational::zero(); m + 1];
    let mut equivalent = vec![Rational::zero(); m + 1];
    local[m] = one();
    equivalent[m] = chain.w[m].clone();
    for i in (0..m).rev() {
        let tail = equivalent[i + 1].clone() + chain.z[i].clone();
        local[i] = tail.clone() / (chain.w[i].clone() + tail);
        equivalent[i] = local[i].clone() * chain.w[i].clone();
    }
    // eqs. 2.5–2.6
    let mut alloc = Vec::with_capacity(m + 1);
    let mut carried = one();
    for ah in &local {
        alloc.push(carried.clone() * ah.clone());
        carried = carried * (one() - ah.clone());
    }
    ExactSolution {
        local,
        alloc,
        equivalent,
    }
}

/// Exact finish time of processor `i` per eqs. 2.1–2.2.
pub fn finish_time(chain: &ExactChain, alloc: &[Rational], i: usize) -> Rational {
    if i == 0 {
        return alloc[0].clone() * chain.w[0].clone();
    }
    if alloc[i].is_zero() {
        return Rational::zero();
    }
    let mut remaining = Rational::one();
    let mut comm = Rational::zero();
    for k in 1..=i {
        remaining = remaining - alloc[k - 1].clone();
        comm = comm + remaining.clone() * chain.z[k - 1].clone();
    }
    comm + alloc[i].clone() * chain.w[i].clone()
}

/// Exact verification of Theorem 2.1: all finish times are *identical*
/// rationals equal to `w̄_0`.
pub fn verify_equal_finish(chain: &ExactChain, sol: &ExactSolution) -> bool {
    let target = sol.makespan();
    (0..chain.len()).all(|i| finish_time(chain, &sol.alloc, i) == *target)
}

/// Exact verification that the fractions sum to one.
pub fn verify_total(sol: &ExactSolution) -> bool {
    let mut acc = Rational::zero();
    for a in &sol.alloc {
        acc = acc + a.clone();
    }
    acc == Rational::one()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear;

    fn r(n: i64, d: u64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn two_homogeneous_exact() {
        let chain = ExactChain::from_scaled_ints(&[1, 1], &[1], 1);
        let sol = solve(&chain);
        assert_eq!(sol.alloc[0], r(2, 3));
        assert_eq!(sol.alloc[1], r(1, 3));
        assert_eq!(*sol.makespan(), r(2, 3));
    }

    #[test]
    fn theorem_2_1_holds_exactly() {
        let chain = ExactChain::from_scaled_ints(&[7, 13, 3, 21, 9], &[2, 5, 1, 8], 10);
        let sol = solve(&chain);
        assert!(verify_equal_finish(&chain, &sol));
        assert!(verify_total(&sol));
    }

    #[test]
    fn exact_matches_f64_solver() {
        let chain = ExactChain::from_scaled_ints(&[12, 25, 5, 37], &[2, 1, 7], 10);
        let exact = solve(&chain);
        let f64net = chain.to_f64_network();
        let approx = linear::solve(&f64net);
        for i in 0..chain.len() {
            let e = exact.alloc[i].to_f64();
            let a = approx.alloc.alpha(i);
            assert!((e - a).abs() < 1e-12, "α_{i}: exact {e} vs f64 {a}");
        }
        assert!((exact.makespan().to_f64() - approx.makespan()).abs() < 1e-12);
    }

    #[test]
    fn long_chain_stays_exact() {
        // 24 processors: denominators blow up but invariants must hold
        // exactly — this is the whole point of the bigint substrate.
        let w: Vec<i64> = (1..=24).map(|i| 10 + (i * 7) % 13).collect();
        let z: Vec<i64> = (1..24).map(|i| 1 + (i * 3) % 5).collect();
        let chain = ExactChain::from_scaled_ints(&w, &z, 10);
        let sol = solve(&chain);
        assert!(verify_equal_finish(&chain, &sol));
        assert!(verify_total(&sol));
        assert!(sol.alloc.iter().all(Rational::is_positive));
    }

    #[test]
    fn zero_link_exact() {
        let chain = ExactChain::new(vec![r(1, 1), r(3, 1)], vec![Rational::zero()]);
        let sol = solve(&chain);
        assert_eq!(sol.alloc[0], r(3, 4));
        assert_eq!(sol.alloc[1], r(1, 4));
    }

    #[test]
    fn equivalent_monotone_under_prefix() {
        // w̄_i ≤ w_i exactly.
        let chain = ExactChain::from_scaled_ints(&[9, 14, 4, 30], &[3, 2, 6], 10);
        let sol = solve(&chain);
        for i in 0..chain.len() {
            assert!(sol.equivalent[i] <= chain.w[i]);
        }
    }
}
