//! A small arbitrary-precision integer, implemented from scratch so the
//! exact rational solver carries no external dependency.
//!
//! Representation: little-endian `u32` limbs with no trailing zero limbs
//! (canonical form); zero is the empty limb vector. Arithmetic is
//! schoolbook — the chain reduction on networks of interest (m ≤ a few
//! hundred) never produces numbers where asymptotics matter.

use std::cmp::Ordering;
use std::fmt;

/// Unsigned arbitrary-precision integer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BigUint {
    /// Little-endian limbs; canonical (no trailing zeros).
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        Self { limbs: vec![1] }
    }

    /// Construct from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut limbs = Vec::new();
        if v != 0 {
            limbs.push(v as u32);
            let hi = (v >> 32) as u32;
            if hi != 0 {
                limbs.push(hi);
            }
        }
        Self { limbs }
    }

    /// Construct from a `u128`.
    pub fn from_u128(mut v: u128) -> Self {
        let mut limbs = Vec::new();
        while v != 0 {
            limbs.push(v as u32);
            v >>= 32;
        }
        Self { limbs }
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 32 * (self.limbs.len() - 1) + (32 - top.leading_zeros() as usize),
        }
    }

    fn normalize(mut limbs: Vec<u32>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Self { limbs }
    }

    /// Addition.
    pub fn add(&self, other: &Self) -> Self {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let s = long[i] as u64 + short.get(i).copied().unwrap_or(0) as u64 + carry;
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        Self::normalize(out)
    }

    /// Subtraction; panics if `other > self`.
    pub fn sub(&self, other: &Self) -> Self {
        assert!(
            self.cmp_mag(other) != Ordering::Less,
            "BigUint subtraction underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let d = self.limbs[i] as i64 - other.limbs.get(i).copied().unwrap_or(0) as i64 - borrow;
            if d < 0 {
                out.push((d + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(d as u32);
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0);
        Self::normalize(out)
    }

    /// Multiplication (schoolbook).
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u64 + a as u64 * b as u64 + carry;
                out[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u64 + carry;
                out[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        Self::normalize(out)
    }

    /// Magnitude comparison.
    pub fn cmp_mag(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let limb_shift = n / 32;
        let bit_shift = n % 32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        Self::normalize(out)
    }

    /// Right shift by `n` bits.
    pub fn shr(&self, n: usize) -> Self {
        let limb_shift = n / 32;
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let bit_shift = n % 32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (32 - bit_shift)));
            }
        }
        Self::normalize(out)
    }

    /// Division with remainder via binary long division. Panics on division
    /// by zero.
    pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        if self.cmp_mag(divisor) == Ordering::Less {
            return (Self::zero(), self.clone());
        }
        let shift = self.bits() - divisor.bits();
        let mut remainder = self.clone();
        let mut quotient = Self::zero();
        let mut d = divisor.shl(shift);
        for s in (0..=shift).rev() {
            if remainder.cmp_mag(&d) != Ordering::Less {
                remainder = remainder.sub(&d);
                quotient = quotient.add(&Self::one().shl(s));
            }
            d = d.shr(1);
        }
        (quotient, remainder)
    }

    /// Greatest common divisor (Euclid's algorithm on top of `div_rem`).
    pub fn gcd(&self, other: &Self) -> Self {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let (_, r) = a.div_rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Lossy conversion to `f64` (round-to-nearest via the top 53+ bits).
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &l in self.limbs.iter().rev() {
            v = v * 4294967296.0 + l as f64;
        }
        v
    }

    /// Decimal string.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut digits = Vec::new();
        let ten = Self::from_u64(10);
        let mut v = self.clone();
        while !v.is_zero() {
            let (q, r) = v.div_rem(&ten);
            digits.push(char::from(
                b'0' + r.limbs.first().copied().unwrap_or(0) as u8,
            ));
            v = q;
        }
        digits.iter().rev().collect()
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_decimal())
    }
}

/// Sign of a [`BigInt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Negative value.
    Negative,
    /// Zero.
    Zero,
    /// Positive value.
    Positive,
}

/// Signed arbitrary-precision integer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// The value zero.
    pub fn zero() -> Self {
        Self {
            sign: Sign::Zero,
            mag: BigUint::zero(),
        }
    }

    /// The value one.
    pub fn one() -> Self {
        Self {
            sign: Sign::Positive,
            mag: BigUint::one(),
        }
    }

    /// Construct from an `i64`.
    pub fn from_i64(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => Self::zero(),
            Ordering::Greater => Self {
                sign: Sign::Positive,
                mag: BigUint::from_u64(v as u64),
            },
            Ordering::Less => Self {
                sign: Sign::Negative,
                mag: BigUint::from_u64(v.unsigned_abs()),
            },
        }
    }

    /// Construct from a magnitude and an explicit sign (normalized if the
    /// magnitude is zero).
    pub fn from_mag(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            Self::zero()
        } else {
            assert!(sign != Sign::Zero, "nonzero magnitude with zero sign");
            Self { sign, mag }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// True if zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// True if strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// True if strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        match self.sign {
            Sign::Zero => Self::zero(),
            Sign::Positive => Self {
                sign: Sign::Negative,
                mag: self.mag.clone(),
            },
            Sign::Negative => Self {
                sign: Sign::Positive,
                mag: self.mag.clone(),
            },
        }
    }

    /// Addition.
    pub fn add(&self, other: &Self) -> Self {
        match (self.sign, other.sign) {
            (Sign::Zero, _) => other.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => Self {
                sign: a,
                mag: self.mag.add(&other.mag),
            },
            _ => match self.mag.cmp_mag(&other.mag) {
                Ordering::Equal => Self::zero(),
                Ordering::Greater => Self {
                    sign: self.sign,
                    mag: self.mag.sub(&other.mag),
                },
                Ordering::Less => Self {
                    sign: other.sign,
                    mag: other.mag.sub(&self.mag),
                },
            },
        }
    }

    /// Subtraction.
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }

    /// Multiplication.
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let sign = if self.sign == other.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        Self {
            sign,
            mag: self.mag.mul(&other.mag),
        }
    }

    /// Comparison.
    pub fn cmp_val(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Negative, Sign::Negative) => other.mag.cmp_mag(&self.mag),
            (Sign::Negative, _) => Ordering::Less,
            (Sign::Zero, Sign::Negative) => Ordering::Greater,
            (Sign::Zero, Sign::Zero) => Ordering::Equal,
            (Sign::Zero, Sign::Positive) => Ordering::Less,
            (Sign::Positive, Sign::Positive) => self.mag.cmp_mag(&other.mag),
            (Sign::Positive, _) => Ordering::Greater,
        }
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        match self.sign {
            Sign::Zero => 0.0,
            Sign::Positive => self.mag.to_f64(),
            Sign::Negative => -self.mag.to_f64(),
        }
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_val(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn zero_is_canonical() {
        assert!(BigUint::zero().is_zero());
        assert_eq!(big(0), BigUint::zero());
        assert_eq!(BigUint::zero().bits(), 0);
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = big(u32::MAX as u64);
        let b = big(1);
        assert_eq!(a.add(&b), big(1u64 << 32));
    }

    #[test]
    fn add_is_commutative() {
        let a = BigUint::from_u128(0xDEAD_BEEF_CAFE_BABE_1234_5678u128);
        let b = big(987_654_321);
        assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn sub_round_trip() {
        let a = BigUint::from_u128(1u128 << 100);
        let b = big(12345);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.sub(&a), BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        big(1).sub(&big(2));
    }

    #[test]
    fn mul_matches_u128() {
        let a = 0xFFFF_FFFF_FFFFu64;
        let b = 0x1234_5678u64;
        let prod = BigUint::from_u64(a).mul(&BigUint::from_u64(b));
        assert_eq!(prod, BigUint::from_u128(a as u128 * b as u128));
    }

    #[test]
    fn mul_by_zero() {
        let a = BigUint::from_u128(u128::MAX);
        assert!(a.mul(&BigUint::zero()).is_zero());
    }

    #[test]
    fn shifts_round_trip() {
        let a = BigUint::from_u128(0x1234_5678_9ABC_DEF0_1111u128);
        for n in [1usize, 7, 31, 32, 33, 64, 100] {
            assert_eq!(a.shl(n).shr(n), a, "shift {n}");
        }
    }

    #[test]
    fn div_rem_small() {
        let (q, r) = big(100).div_rem(&big(7));
        assert_eq!(q, big(14));
        assert_eq!(r, big(2));
    }

    #[test]
    fn div_rem_large_matches_reconstruction() {
        let a = BigUint::from_u128(0xFEDC_BA98_7654_3210_0123_4567_89AB_CDEFu128);
        let b = BigUint::from_u64(0xDEAD_BEEF);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r.cmp_mag(&b) == Ordering::Less);
    }

    #[test]
    fn div_by_larger_gives_zero() {
        let (q, r) = big(3).div_rem(&big(10));
        assert!(q.is_zero());
        assert_eq!(r, big(3));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        big(1).div_rem(&BigUint::zero());
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(big(12).gcd(&big(18)), big(6));
        assert_eq!(big(17).gcd(&big(13)), big(1));
        assert_eq!(big(0).gcd(&big(5)), big(5));
        assert_eq!(big(5).gcd(&big(0)), big(5));
    }

    #[test]
    fn gcd_large() {
        let a = BigUint::from_u128(2u128.pow(80) * 3 * 7);
        let b = BigUint::from_u128(2u128.pow(75) * 7 * 11);
        assert_eq!(a.gcd(&b), BigUint::from_u128(2u128.pow(75) * 7));
    }

    #[test]
    fn decimal_rendering() {
        assert_eq!(big(0).to_decimal(), "0");
        assert_eq!(big(42).to_decimal(), "42");
        assert_eq!(
            BigUint::from_u128(123_456_789_012_345_678_901_234_567_890u128).to_decimal(),
            "123456789012345678901234567890"
        );
    }

    #[test]
    fn to_f64_roundtrip_for_exact_values() {
        assert_eq!(big(1u64 << 52).to_f64(), (1u64 << 52) as f64);
        assert_eq!(BigUint::from_u128(1u128 << 100).to_f64(), 2f64.powi(100));
    }

    #[test]
    fn bigint_signs() {
        let pos = BigInt::from_i64(5);
        let neg = BigInt::from_i64(-5);
        assert_eq!(pos.add(&neg), BigInt::zero());
        assert_eq!(pos.sub(&neg), BigInt::from_i64(10));
        assert_eq!(neg.mul(&neg), BigInt::from_i64(25));
        assert_eq!(pos.mul(&neg), BigInt::from_i64(-25));
        assert_eq!(BigInt::from_i64(i64::MIN).to_f64(), i64::MIN as f64);
    }

    #[test]
    fn bigint_ordering() {
        let vals: Vec<BigInt> = [-3i64, -1, 0, 2, 7]
            .iter()
            .map(|&v| BigInt::from_i64(v))
            .collect();
        for w in vals.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn bigint_display() {
        assert_eq!(BigInt::from_i64(-42).to_string(), "-42");
        assert_eq!(BigInt::zero().to_string(), "0");
    }
}
