//! Exact rational arithmetic on top of [`BigInt`]/[`BigUint`], with operator
//! overloads for readable solver code.

use super::bigint::{BigInt, BigUint, Sign};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number `num / den` in lowest terms with `den > 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rational {
    num: BigInt,
    den: BigUint,
}

impl Rational {
    /// Zero.
    pub fn zero() -> Self {
        Self {
            num: BigInt::zero(),
            den: BigUint::one(),
        }
    }

    /// One.
    pub fn one() -> Self {
        Self {
            num: BigInt::one(),
            den: BigUint::one(),
        }
    }

    /// From an integer.
    pub fn from_int(v: i64) -> Self {
        Self {
            num: BigInt::from_i64(v),
            den: BigUint::one(),
        }
    }

    /// From a ratio of integers. Panics if `den == 0`.
    pub fn from_ratio(num: i64, den: u64) -> Self {
        assert!(den != 0, "zero denominator");
        Self::normalized(BigInt::from_i64(num), BigUint::from_u64(den))
    }

    /// From big parts. Panics if `den` is zero.
    pub fn from_parts(num: BigInt, den: BigUint) -> Self {
        assert!(!den.is_zero(), "zero denominator");
        Self::normalized(num, den)
    }

    fn normalized(num: BigInt, den: BigUint) -> Self {
        if num.is_zero() {
            return Self::zero();
        }
        let g = num.magnitude().gcd(&den);
        if g.is_one() {
            return Self { num, den };
        }
        let (nm, _) = num.magnitude().div_rem(&g);
        let (dn, _) = den.div_rem(&g);
        Self {
            num: BigInt::from_mag(num.sign(), nm),
            den: dn,
        }
    }

    /// Numerator (signed, lowest terms).
    pub fn numerator(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (positive, lowest terms).
    pub fn denominator(&self) -> &BigUint {
        &self.den
    }

    /// True if zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// True if strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// True if strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Multiplicative inverse; panics on zero.
    pub fn recip(&self) -> Self {
        assert!(!self.is_zero(), "reciprocal of zero");
        let sign = self.num.sign();
        Self {
            num: BigInt::from_mag(sign, self.den.clone()),
            den: self.num.magnitude().clone(),
        }
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        // Scale so both parts fit comfortably in f64 before dividing.
        let nb = self.num.magnitude().bits();
        let db = self.den.bits();
        let shift = nb.max(db).saturating_sub(900);
        let n = self.num.magnitude().shr(shift).to_f64();
        let d = self.den.shr(shift).to_f64();
        let v = n / d;
        if self.num.is_negative() {
            -v
        } else {
            v
        }
    }

    /// Comparison.
    pub fn cmp_val(&self, other: &Self) -> Ordering {
        // a/b vs c/d  ⇔  a·d vs c·b  (b, d > 0)
        let lhs = self
            .num
            .mul(&BigInt::from_mag(Sign::Positive, other.den.clone()));
        let rhs = other
            .num
            .mul(&BigInt::from_mag(Sign::Positive, self.den.clone()));
        lhs.cmp_val(&rhs)
    }

    /// Absolute difference.
    pub fn abs_diff(&self, other: &Self) -> Self {
        let d = self.clone() - other.clone();
        if d.is_negative() {
            -d
        } else {
            d
        }
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        let den_l = BigInt::from_mag(Sign::Positive, self.den.clone());
        let den_r = BigInt::from_mag(Sign::Positive, rhs.den.clone());
        let num = self.num.mul(&den_r).add(&rhs.num.mul(&den_l));
        Rational::normalized(num, self.den.mul(&rhs.den))
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::normalized(self.num.mul(&rhs.num), self.den.mul(&rhs.den))
    }
}

impl Div for Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)] // a/b = a·(1/b) by definition
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: self.num.neg(),
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_val(other)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: u64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn normalization_lowest_terms() {
        let v = r(6, 8);
        assert_eq!(v, r(3, 4));
        assert_eq!(v.to_string(), "3/4");
    }

    #[test]
    fn zero_normalizes_denominator() {
        let v = r(0, 17);
        assert!(v.is_zero());
        assert_eq!(v.to_string(), "0");
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
    }

    #[test]
    fn negatives() {
        assert_eq!(r(-1, 2) + r(1, 2), Rational::zero());
        assert_eq!(-r(3, 5), r(-3, 5));
        assert_eq!(r(-2, 4), r(-1, 2));
        assert!(r(-1, 3).is_negative());
    }

    #[test]
    fn recip() {
        assert_eq!(r(3, 7).recip(), r(7, 3));
        assert_eq!(r(-3, 7).recip(), r(-7, 3));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        Rational::zero().recip();
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(2, 4) == r(1, 2));
        assert!(r(7, 3) > r(2, 1));
    }

    #[test]
    fn to_f64_small() {
        assert!((r(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
        assert!((r(-7, 2).to_f64() + 3.5).abs() < 1e-15);
    }

    #[test]
    fn to_f64_huge_values_do_not_overflow_prematurely() {
        // (2^200 + 1) / 2^200 ≈ 1
        let big = Rational::from_parts(
            BigInt::from_mag(Sign::Positive, BigUint::one().shl(200).add(&BigUint::one())),
            BigUint::one().shl(200),
        );
        let v = big.to_f64();
        assert!((v - 1.0).abs() < 1e-10, "got {v}");
    }

    #[test]
    fn abs_diff() {
        assert_eq!(r(1, 2).abs_diff(&r(1, 3)), r(1, 6));
        assert_eq!(r(1, 3).abs_diff(&r(1, 2)), r(1, 6));
    }

    #[test]
    fn repeated_sums_stay_exact() {
        // Σ 1/3, 300 times == 100 exactly.
        let third = r(1, 3);
        let mut acc = Rational::zero();
        for _ in 0..300 {
            acc = acc + third.clone();
        }
        assert_eq!(acc, Rational::from_int(100));
    }
}
