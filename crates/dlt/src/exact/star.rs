//! Exact-rational star/bus solver, mirroring [`crate::star`] over
//! [`Rational`] arithmetic so the equal-finish-time identity of the star
//! model can be asserted exactly and the f64 solver validated.

use super::rational::Rational;
use crate::model::StarNetwork;

/// A star whose rates are exact rationals: `w\[0\]` is the root, `w[i]`
/// (`i ≥ 1`) child `i`, `z[i-1]` the link to child `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactStar {
    /// Processor rates, root first.
    pub w: Vec<Rational>,
    /// Link rates, one per child.
    pub z: Vec<Rational>,
}

impl ExactStar {
    /// Build from rational rates.
    pub fn new(w: Vec<Rational>, z: Vec<Rational>) -> Self {
        assert!(!w.is_empty());
        assert_eq!(w.len() - 1, z.len());
        assert!(w.iter().all(Rational::is_positive));
        assert!(z.iter().all(|v| !v.is_negative()));
        Self { w, z }
    }

    /// Build from integer-valued rates scaled by `denom`.
    pub fn from_scaled_ints(w: &[i64], z: &[i64], denom: u64) -> Self {
        Self::new(
            w.iter().map(|&v| Rational::from_ratio(v, denom)).collect(),
            z.iter().map(|&v| Rational::from_ratio(v, denom)).collect(),
        )
    }

    /// Lossy conversion to the f64 model.
    pub fn to_f64_network(&self) -> StarNetwork {
        StarNetwork::from_rates(
            &self.w.iter().map(Rational::to_f64).collect::<Vec<_>>(),
            &self.z.iter().map(Rational::to_f64).collect::<Vec<_>>(),
        )
    }

    /// Number of processors.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// True if the star has no children.
    pub fn is_empty(&self) -> bool {
        self.z.is_empty()
    }
}

/// Exact solution of the star problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactStarSolution {
    /// Exact fractions (root first; sums to exactly 1).
    pub alloc: Vec<Rational>,
    /// The exact common finish time.
    pub makespan: Rational,
}

/// Solve the star problem exactly: `α_{i+1} = α_i · w_i / (z_{i+1} +
/// w_{i+1})` anchored at the root, normalized to unit total.
pub fn solve(star: &ExactStar) -> ExactStarSolution {
    let n = star.len();
    let mut raw = vec![Rational::one()];
    for i in 1..n {
        let prev_w = star.w[i - 1].clone();
        let denom = star.z[i - 1].clone() + star.w[i].clone();
        let prev = raw[i - 1].clone();
        raw.push(prev * (prev_w / denom));
    }
    let mut total = Rational::zero();
    for r in &raw {
        total = total + r.clone();
    }
    let alloc: Vec<Rational> = raw.into_iter().map(|r| r / total.clone()).collect();
    let makespan = alloc[0].clone() * star.w[0].clone();
    ExactStarSolution { alloc, makespan }
}

/// Exact finish time of processor `i` (root = 0) under an allocation.
pub fn finish_time(star: &ExactStar, alloc: &[Rational], i: usize) -> Rational {
    if i == 0 {
        return alloc[0].clone() * star.w[0].clone();
    }
    if alloc[i].is_zero() {
        return Rational::zero();
    }
    let mut comm = Rational::zero();
    for k in 1..=i {
        comm = comm + alloc[k].clone() * star.z[k - 1].clone();
    }
    comm + alloc[i].clone() * star.w[i].clone()
}

/// Exact verification of the star participation theorem: all finish times
/// identical.
pub fn verify_equal_finish(star: &ExactStar, sol: &ExactStarSolution) -> bool {
    (0..star.len()).all(|i| finish_time(star, &sol.alloc, i) == sol.makespan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::star as f64star;

    #[test]
    fn two_processor_star_exact() {
        let star = ExactStar::from_scaled_ints(&[1, 1], &[1], 1);
        let sol = solve(&star);
        assert_eq!(sol.alloc[0], Rational::from_ratio(2, 3));
        assert_eq!(sol.alloc[1], Rational::from_ratio(1, 3));
        assert_eq!(sol.makespan, Rational::from_ratio(2, 3));
    }

    #[test]
    fn equal_finish_holds_exactly() {
        let star = ExactStar::from_scaled_ints(&[7, 13, 3, 21], &[2, 5, 1], 10);
        let sol = solve(&star);
        assert!(verify_equal_finish(&star, &sol));
        let mut total = Rational::zero();
        for a in &sol.alloc {
            total = total + a.clone();
        }
        assert_eq!(total, Rational::one());
    }

    #[test]
    fn matches_f64_solver() {
        let star = ExactStar::from_scaled_ints(&[12, 25, 5, 37], &[2, 1, 7], 10);
        let exact = solve(&star);
        let approx = f64star::solve(&star.to_f64_network());
        for i in 0..star.len() {
            assert!(
                (exact.alloc[i].to_f64() - approx.alloc.alpha(i)).abs() < 1e-12,
                "α_{i}"
            );
        }
        assert!((exact.makespan.to_f64() - approx.makespan).abs() < 1e-12);
    }

    #[test]
    fn wide_star_stays_exact() {
        let w: Vec<i64> = (1..=16).map(|i| 5 + (i * 11) % 17).collect();
        let z: Vec<i64> = (1..16).map(|i| 1 + (i * 3) % 7).collect();
        let star = ExactStar::from_scaled_ints(&w, &z, 10);
        let sol = solve(&star);
        assert!(verify_equal_finish(&star, &sol));
        assert!(sol.alloc.iter().all(Rational::is_positive));
    }

    #[test]
    fn childless_star() {
        let star = ExactStar::from_scaled_ints(&[5], &[], 1);
        let sol = solve(&star);
        assert_eq!(sol.alloc[0], Rational::one());
        assert_eq!(sol.makespan, Rational::from_int(5));
    }
}
