//! Exact arithmetic substrate: an arbitrary-precision integer, a rational
//! type built on it, and an exact-rational version of the chain solver used
//! to validate the `f64` implementation.

pub mod bigint;
pub mod chain;
pub mod rational;
pub mod star;

pub use bigint::{BigInt, BigUint, Sign};
pub use chain::{ExactChain, ExactSolution};
pub use rational::Rational;
pub use star::{ExactStar, ExactStarSolution};
