//! The LINEAR BOUNDARY-LINEAR solver (Algorithm 1 of the paper) and the
//! chain reduction recurrences (eqs. 2.4 and 2.7).
//!
//! The solver walks the chain from the far end towards the root, collapsing
//! the two farthest processors into an *equivalent processor* at every step:
//!
//! * `α̂_m = 1`, `w̄_m = w_m`
//! * `α̂_i = (w̄_{i+1} + z_{i+1}) / (w_i + w̄_{i+1} + z_{i+1})`   (eq. 2.7)
//! * `w̄_i = α̂_i · w_i`                                          (eq. 2.4)
//!
//! and then unrolls the local fractions into global fractions (eqs. 2.5–2.6).
//! The resulting allocation makes all processors finish simultaneously
//! (Theorem 2.1) and is optimal for the linear cost model.

use crate::model::{Allocation, LinearNetwork, LocalAllocation};

#[path = "linear_reference.rs"]
pub mod reference;

/// The complete output of Algorithm 1: local fractions, global fractions and
/// the per-prefix equivalent processing times.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSolution {
    /// Local allocation `α̂` (fraction of received load retained by each
    /// processor; `α̂_m = 1`).
    pub local: LocalAllocation,
    /// Global allocation `α` (fractions of the unit total load).
    pub alloc: Allocation,
    /// `w̄_i`: the equivalent unit processing time of the sub-chain
    /// `P_i … P_m` (eq. 2.4). `w̄_0` is the makespan of the whole network
    /// under unit load.
    pub equivalent: Vec<f64>,
}

impl LinearSolution {
    /// The optimal makespan `T(α) = w̄_0` (the whole chain collapsed to a
    /// single equivalent processor handling the unit load).
    #[inline]
    pub fn makespan(&self) -> f64 {
        self.equivalent[0]
    }
}

/// Solve LINEAR BOUNDARY-LINEAR (Algorithm 1). Runs in O(m).
///
/// Every processor participates with a strictly positive fraction, finishing
/// at the same instant `w̄_0`.
pub fn solve(net: &LinearNetwork) -> LinearSolution {
    let m = net.last_index();
    obs::count!("dlt.linear.solve", "m" => m);
    let mut alpha_hat = vec![0.0; m + 1];
    let mut w_bar = vec![0.0; m + 1];
    alpha_hat[m] = 1.0;
    w_bar[m] = net.w(m);
    for i in (0..m).rev() {
        let tail = w_bar[i + 1] + net.z(i + 1);
        alpha_hat[i] = tail / (net.w(i) + tail); // eq. 2.7
        w_bar[i] = alpha_hat[i] * net.w(i); // eq. 2.4
    }
    let local = LocalAllocation::new(alpha_hat);
    let alloc = local.to_global();
    LinearSolution {
        local,
        alloc,
        equivalent: w_bar,
    }
}

/// The equivalent unit processing time `w̄` of an entire chain: the makespan
/// it exhibits when handed a unit load (eq. 2.3/2.4 after full reduction).
/// Equivalent to `solve(net).makespan()` but does not materialize the
/// allocation vectors.
pub fn equivalent_time(net: &LinearNetwork) -> f64 {
    obs::count!("dlt.linear.equivalent_time");
    let m = net.last_index();
    let mut w_bar = net.w(m);
    for i in (0..m).rev() {
        let tail = w_bar + net.z(i + 1);
        w_bar = net.w(i) * tail / (net.w(i) + tail);
    }
    w_bar
}

/// One step of the pairwise reduction of Figure 3: collapse a processor with
/// rate `w` whose successor segment has equivalent rate `w_next` behind a
/// link of rate `z` into a single equivalent processor. Returns
/// `(α̂, w̄)` where `α̂` is the local fraction retained by the front
/// processor and `w̄` the resulting equivalent rate.
#[inline]
pub fn reduce_pair(w: f64, z: f64, w_next: f64) -> (f64, f64) {
    let tail = w_next + z;
    let alpha_hat = tail / (w + tail);
    (alpha_hat, alpha_hat * w)
}

/// Solve for the optimal allocation of the sub-chain starting at processor
/// `i`, treating that sub-chain as an isolated network handed a unit load.
/// Used by the mechanism's per-agent payment computation, which needs the
/// equivalent time of `P_{j-1} … P_m` under counterfactual bids.
pub fn solve_suffix(net: &LinearNetwork, i: usize) -> LinearSolution {
    solve(&net.suffix(i))
}

/// The surviving chain after processor `dead` crash-stops: `P_dead` is
/// removed and, when it was interior, the two links around it are fused
/// into one of rate `z_dead + z_{dead+1}` — load bound for `P_{dead+1}`
/// still physically traverses both hops (store-and-forward through the
/// failed node's position), it just no longer stops there. When `P_dead`
/// is the terminal processor the chain is simply truncated.
///
/// The fault-recovery protocol re-solves the allocation on this network.
///
/// # Panics
/// Panics if `dead` is the root (`0`, obedient and assumed reliable) or out
/// of range, or if removing the node would empty the chain.
pub fn splice(net: &LinearNetwork, dead: usize) -> LinearNetwork {
    obs::count!("dlt.linear.splice", "dead" => dead);
    let m = net.last_index();
    assert!(
        dead >= 1 && dead <= m,
        "can only splice out a strategic processor, got {dead}"
    );
    assert!(net.len() > 1, "cannot splice the only processor out");
    let mut w = Vec::with_capacity(net.len() - 1);
    let mut z = Vec::with_capacity(net.len() - 2);
    for i in 0..=m {
        if i == dead {
            continue;
        }
        w.push(net.w(i));
        if i >= 1 {
            z.push(if i == dead + 1 {
                net.z(dead) + net.z(i)
            } else {
                net.z(i)
            });
        }
    }
    LinearNetwork::from_rates(&w, &z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EPSILON;
    use crate::timing::{finish_times, makespan, participation_spread};

    #[test]
    fn single_processor_takes_everything() {
        let net = LinearNetwork::homogeneous(1, 3.0, 0.0);
        let sol = solve(&net);
        assert_eq!(sol.alloc.alpha(0), 1.0);
        assert_eq!(sol.makespan(), 3.0);
    }

    #[test]
    fn two_homogeneous_processors() {
        // w0=w1=1, z=1: α̂_0 = 2/3 → α = (2/3, 1/3), makespan 2/3.
        let net = LinearNetwork::from_rates(&[1.0, 1.0], &[1.0]);
        let sol = solve(&net);
        assert!((sol.alloc.alpha(0) - 2.0 / 3.0).abs() < EPSILON);
        assert!((sol.alloc.alpha(1) - 1.0 / 3.0).abs() < EPSILON);
        assert!((sol.makespan() - 2.0 / 3.0).abs() < EPSILON);
    }

    #[test]
    fn two_processors_free_link_balances_by_speed() {
        // z=0: loads proportional to 1/w. w0=1, w1=3 → α=(3/4, 1/4).
        let net = LinearNetwork::from_rates(&[1.0, 3.0], &[0.0]);
        let sol = solve(&net);
        assert!((sol.alloc.alpha(0) - 0.75).abs() < EPSILON);
        assert!((sol.alloc.alpha(1) - 0.25).abs() < EPSILON);
    }

    #[test]
    fn solution_is_feasible() {
        let net = LinearNetwork::from_rates(&[1.0, 2.0, 0.5, 4.0], &[0.2, 0.1, 0.7]);
        let sol = solve(&net);
        sol.alloc
            .validate()
            .expect("solver output must be feasible");
        assert!(
            sol.alloc.fractions().iter().all(|&a| a > 0.0),
            "all processors participate"
        );
    }

    #[test]
    fn theorem_2_1_equal_finish_times() {
        let net = LinearNetwork::from_rates(&[1.0, 2.0, 0.5, 4.0, 1.5], &[0.2, 0.1, 0.7, 0.05]);
        let sol = solve(&net);
        let spread = participation_spread(&net, &sol.alloc);
        assert!(
            spread < 1e-12,
            "optimal solution must equalize finish times, spread={spread}"
        );
    }

    #[test]
    fn makespan_equals_w_bar_0() {
        let net = LinearNetwork::from_rates(&[1.0, 2.0, 3.0], &[0.5, 0.25]);
        let sol = solve(&net);
        let ms = makespan(&net, &sol.alloc);
        assert!((ms - sol.makespan()).abs() < 1e-12);
        assert!((ms - sol.equivalent[0]).abs() < 1e-12);
    }

    #[test]
    fn equivalent_time_agrees_with_solve() {
        let net = LinearNetwork::from_rates(&[2.0, 1.0, 4.0, 0.25], &[0.3, 0.6, 0.1]);
        assert!((equivalent_time(&net) - solve(&net).makespan()).abs() < 1e-12);
    }

    #[test]
    fn equivalent_suffix_matches_segment_makespan() {
        // w̄_i must equal the makespan of the isolated sub-chain P_i…P_m.
        let net = LinearNetwork::from_rates(&[1.0, 2.0, 0.5, 4.0], &[0.2, 0.1, 0.7]);
        let sol = solve(&net);
        for i in 0..net.len() {
            let seg = solve(&net.suffix(i));
            assert!(
                (sol.equivalent[i] - seg.makespan()).abs() < 1e-12,
                "w̄_{i} mismatch: {} vs {}",
                sol.equivalent[i],
                seg.makespan()
            );
        }
    }

    #[test]
    fn equivalent_faster_than_front_processor() {
        // Adding helpers can only help: w̄_i ≤ w_i (engine of Lemma 5.4).
        let net = LinearNetwork::from_rates(&[1.0, 2.0, 0.5, 4.0, 1.0], &[0.2, 0.9, 0.7, 0.1]);
        let sol = solve(&net);
        for i in 0..net.len() {
            assert!(sol.equivalent[i] <= net.w(i) + EPSILON);
        }
    }

    #[test]
    fn reduce_pair_matches_two_proc_solve() {
        let (ah, wb) = reduce_pair(1.0, 1.0, 1.0);
        assert!((ah - 2.0 / 3.0).abs() < EPSILON);
        assert!((wb - 2.0 / 3.0).abs() < EPSILON);
    }

    #[test]
    fn slow_link_starves_the_tail() {
        // An extremely slow link should leave almost all load at the root.
        let net = LinearNetwork::from_rates(&[1.0, 1.0], &[1e6]);
        let sol = solve(&net);
        assert!(sol.alloc.alpha(0) > 0.999_99);
        assert!(sol.alloc.alpha(1) > 0.0, "but the tail still participates");
    }

    #[test]
    fn faster_tail_gets_more_load() {
        let slow_tail = LinearNetwork::from_rates(&[1.0, 2.0], &[0.1]);
        let fast_tail = LinearNetwork::from_rates(&[1.0, 0.5], &[0.1]);
        let a_slow = solve(&slow_tail).alloc;
        let a_fast = solve(&fast_tail).alloc;
        assert!(a_fast.alpha(1) > a_slow.alpha(1));
    }

    #[test]
    fn adding_a_processor_never_hurts() {
        // Appending a processor to the chain cannot increase the makespan.
        let base = LinearNetwork::from_rates(&[1.0, 2.0], &[0.3]);
        let ext = LinearNetwork::from_rates(&[1.0, 2.0, 5.0], &[0.3, 0.4]);
        assert!(solve(&ext).makespan() <= solve(&base).makespan() + EPSILON);
    }

    #[test]
    fn finish_times_all_equal_makespan() {
        let net = LinearNetwork::from_rates(&[0.7, 1.3, 2.2, 0.9], &[0.15, 0.25, 0.35]);
        let sol = solve(&net);
        let times = finish_times(&net, &sol.alloc);
        for t in times {
            assert!((t - sol.makespan()).abs() < 1e-12);
        }
    }

    #[test]
    fn splice_interior_fuses_links() {
        let net = LinearNetwork::from_rates(&[1.0, 2.0, 0.5, 4.0], &[0.2, 0.1, 0.7]);
        let spliced = splice(&net, 2);
        assert_eq!(spliced.rates_w(), vec![1.0, 2.0, 4.0]);
        // Link into the old P3 fuses z_2 + z_3 = 0.1 + 0.7.
        assert_eq!(spliced.rates_z(), vec![0.2, 0.1 + 0.7]);
    }

    #[test]
    fn splice_terminal_truncates() {
        let net = LinearNetwork::from_rates(&[1.0, 2.0, 0.5, 4.0], &[0.2, 0.1, 0.7]);
        let spliced = splice(&net, 3);
        assert_eq!(spliced.rates_w(), vec![1.0, 2.0, 0.5]);
        assert_eq!(spliced.rates_z(), vec![0.2, 0.1]);
    }

    #[test]
    fn splice_first_strategic_node() {
        let net = LinearNetwork::from_rates(&[1.0, 2.0, 0.5], &[0.2, 0.1]);
        let spliced = splice(&net, 1);
        assert_eq!(spliced.rates_w(), vec![1.0, 0.5]);
        assert_eq!(spliced.rates_z(), vec![0.2 + 0.1]);
    }

    #[test]
    fn spliced_chain_is_solvable_and_slower() {
        // Losing a worker can only worsen (or keep) the equivalent time.
        let net = LinearNetwork::from_rates(&[1.0, 2.0, 0.5, 4.0, 1.5], &[0.2, 0.1, 0.7, 0.05]);
        let base = equivalent_time(&net);
        for dead in 1..net.len() {
            let spliced = splice(&net, dead);
            let sol = solve(&spliced);
            sol.alloc
                .validate()
                .expect("spliced solution must be feasible");
            assert!(
                equivalent_time(&spliced) >= base - EPSILON,
                "removing P{dead} cannot speed the chain up"
            );
        }
    }

    #[test]
    #[should_panic(expected = "strategic")]
    fn splice_rejects_the_root() {
        let net = LinearNetwork::from_rates(&[1.0, 2.0], &[0.2]);
        splice(&net, 0);
    }

    #[test]
    fn long_homogeneous_chain_is_stable() {
        let net = LinearNetwork::homogeneous(200, 1.0, 0.1);
        let sol = solve(&net);
        sol.alloc.validate().unwrap();
        assert!(participation_spread(&net, &sol.alloc) < 1e-9);
        // Makespan is bounded below by the perfect-split bound w/n and
        // above by the single-processor time.
        assert!(sol.makespan() >= 1.0 / 200.0);
        assert!(sol.makespan() <= 1.0);
    }
}
