//! The TCP server: accept loop, per-connection reader/writer threads,
//! dispatch into the worker pool, and graceful drain.
//!
//! ### Threading model
//! One accept thread; per connection, one reader thread (frames NDJSON
//! lines, answers control ops inline, admits work ops to the bounded
//! queue) and one writer thread (serializes responses from an `mpsc`
//! channel, so workers never block on a slow client socket); a fixed pool
//! of worker threads executing [`crate::handlers`]. Responses carry the
//! request's `id`, so pipelined completions may arrive out of order.
//!
//! ### Backpressure
//! Admission is non-blocking: when the queue is full the reader answers
//! `status = "rejected"` with a `retry_after_ms` hint instead of queueing
//! unboundedly. Every framed request is answered exactly once, so after a
//! drain `received == completed + rejected` — checked by the E23 harness
//! and the integration tests.
//!
//! ### Graceful drain
//! A `shutdown` op (or [`ServerHandle::shutdown`]) stops the accept loop,
//! closes admission (late work ops are rejected as `"draining"`), lets
//! workers finish the backlog, flushes the `obs` sink, and leaves the
//! final counter snapshot to [`ServerHandle::join`].

use crate::cache::SolverCache;
use crate::handlers::{self, JobOp, Request, RequestKind};
use crate::jobs::{self, JobSpec};
use crate::pool::{Job, ServiceCtx, WorkerPool};
use crate::quant;
use crate::queue::{BoundedQueue, PushError};
use crate::stats::{Endpoint, StatsRegistry, LATENCY_SAMPLE_CAP};
use crate::telemetry::PromText;
use minijson::Value;
use obs::Histogram;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing solve / ft_run jobs.
    pub workers: usize,
    /// Bounded queue capacity (admission control threshold).
    pub queue_capacity: usize,
    /// Most jobs held queued across all per-chain job queues before
    /// `submit_job` is rejected with backpressure.
    pub job_queue_capacity: usize,
    /// Solver-cache shard count.
    pub cache_shards: usize,
    /// Entries per cache shard.
    pub cache_capacity_per_shard: usize,
    /// Rate quantization step for cache keys (changeable at runtime via
    /// the `reconfigure` op, which also drops the cache).
    pub quantum: f64,
    /// Solver-cache TTL: entries older than this are re-solved
    /// (`None` = entries live until evicted or invalidated).
    pub cache_ttl_ms: Option<u64>,
    /// Default per-request deadline (queue wait + service), milliseconds.
    pub default_deadline_ms: u64,
    /// Retry hint returned with backpressure rejections, milliseconds.
    pub retry_after_ms: u64,
    /// Accept-side connection cap: when this many connections are live, a
    /// new one is sent a single `connection-limit` rejection line (with
    /// the `retry_after_ms` hint) and closed without reading a request.
    pub max_conns: usize,
    /// Honor `shutdown` ops from non-loopback peers. Off by default: when
    /// `--addr` binds a non-loopback interface, remote clients must not
    /// be able to drain the server.
    pub allow_remote_shutdown: bool,
    /// Mirror obs counters from this memory sink in the stats endpoint
    /// (the server does not install it; the binary decides).
    pub obs_memory: Option<Arc<obs::MemorySink>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_capacity: 1024,
            job_queue_capacity: crate::jobs::DEFAULT_MAX_QUEUED_JOBS,
            cache_shards: 16,
            cache_capacity_per_shard: 512,
            quantum: quant::DEFAULT_QUANTUM,
            cache_ttl_ms: None,
            default_deadline_ms: 2_000,
            retry_after_ms: 25,
            max_conns: 256,
            allow_remote_shutdown: false,
            obs_memory: None,
        }
    }
}

struct Shared {
    ctx: Arc<ServiceCtx>,
    queue: Arc<BoundedQueue<Job>>,
    addr: SocketAddr,
    workers: usize,
}

impl Shared {
    /// Idempotently begin the drain: stop admission and unblock accept.
    fn begin_drain(&self) {
        if !self.ctx.draining.swap(true, Ordering::SeqCst) {
            obs::event!("svc.drain.begin");
            self.queue.close();
            // Poke the accept loop out of its blocking accept.
            let _ = TcpStream::connect(self.addr);
        }
    }

    fn health_body(&self) -> String {
        let state = if self.ctx.draining.load(Ordering::SeqCst) {
            "draining"
        } else {
            "serving"
        };
        Value::Object(vec![
            ("state".into(), Value::String(state.into())),
            (
                "uptime_s".into(),
                Value::Number(self.ctx.stats.uptime_secs()),
            ),
            (
                "uptime_ms".into(),
                Value::Number(self.ctx.stats.uptime_millis() as f64),
            ),
            ("workers".into(), Value::Number(self.workers as f64)),
            ("queue_depth".into(), Value::Number(self.queue.len() as f64)),
            (
                "queue_capacity".into(),
                Value::Number(self.queue.capacity() as f64),
            ),
            ("cache".into(), self.cache_counters()),
        ])
        .to_json()
    }

    /// The cache counter block shared by `health`, `stats` and `metrics`.
    fn cache_counters(&self) -> Value {
        Value::Object(vec![
            ("hits".into(), Value::Number(self.ctx.cache.hits() as f64)),
            (
                "misses".into(),
                Value::Number(self.ctx.cache.misses() as f64),
            ),
            ("entries".into(), Value::Number(self.ctx.cache.len() as f64)),
            (
                "expired".into(),
                Value::Number(self.ctx.cache.expired() as f64),
            ),
            (
                "invalidations".into(),
                Value::Number(self.ctx.cache.invalidations() as f64),
            ),
        ])
    }

    fn stats_body(&self) -> String {
        let s = self.ctx.stats.snapshot();
        let endpoints = Endpoint::ALL
            .iter()
            .map(|&e| {
                let mut merged = self.ctx.stats.merged_latency(e);
                // Exact all-time count; percentiles are over the bounded
                // recent window each worker shard retains.
                let count = merged.total_count();
                let summary = merged.summary();
                let nan_safe = |x: f64| if x.is_finite() { x } else { 0.0 };
                (
                    e.name().to_string(),
                    Value::Object(vec![
                        ("count".into(), Value::Number(count as f64)),
                        ("p50_us".into(), Value::Number(nan_safe(summary.p50))),
                        ("p90_us".into(), Value::Number(nan_safe(summary.p90))),
                        ("p99_us".into(), Value::Number(nan_safe(summary.p99))),
                        ("max_us".into(), Value::Number(nan_safe(summary.max))),
                        ("mean_us".into(), Value::Number(nan_safe(summary.mean))),
                    ]),
                )
            })
            .collect();
        let mut fields = vec![
            (
                "uptime_s".into(),
                Value::Number(self.ctx.stats.uptime_secs()),
            ),
            (
                "uptime_ms".into(),
                Value::Number(self.ctx.stats.uptime_millis() as f64),
            ),
            ("received".into(), Value::Number(s.received as f64)),
            ("completed".into(), Value::Number(s.completed as f64)),
            ("rejected".into(), Value::Number(s.rejected as f64)),
            ("timeouts".into(), Value::Number(s.timeouts as f64)),
            ("errors".into(), Value::Number(s.errors as f64)),
            ("quantum".into(), Value::Number(self.ctx.quantum())),
            ("cache".into(), self.cache_counters()),
            ("endpoints".into(), Value::Object(endpoints)),
            ("jobs".into(), self.jobs_block()),
        ];
        if let Some(sink) = &self.ctx.obs_memory {
            fields.push((
                "obs".into(),
                Value::Object(vec![
                    (
                        "requests".into(),
                        Value::Number(sink.counter_total("svc.requests")),
                    ),
                    (
                        "cache_hits".into(),
                        Value::Number(sink.counter_total("svc.cache.hit")),
                    ),
                    ("records".into(), Value::Number(sink.len() as f64)),
                ]),
            ));
        }
        Value::Object(fields).to_json()
    }

    /// The job-queue block shared by `stats`: aggregate lifecycle
    /// counters plus per-chain queue rows (depth and completed count per
    /// canonical chain, tagged with the chain-key hash).
    fn jobs_block(&self) -> Value {
        let jobs = &self.ctx.jobs;
        let chains = jobs
            .chain_rows()
            .into_iter()
            .map(|(tag, depth, completed)| {
                Value::Object(vec![
                    ("chain".into(), Value::String(tag)),
                    ("depth".into(), Value::Number(depth as f64)),
                    ("completed".into(), Value::Number(completed as f64)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("submitted".into(), Value::Number(jobs.submitted() as f64)),
            ("completed".into(), Value::Number(jobs.completed() as f64)),
            ("cancelled".into(), Value::Number(jobs.cancelled() as f64)),
            ("rejected".into(), Value::Number(jobs.rejected() as f64)),
            ("queued".into(), Value::Number(jobs.queued() as f64)),
            (
                "active_installments".into(),
                Value::Number(jobs.active_installments() as f64),
            ),
            ("chains".into(), Value::Array(chains)),
        ])
    }

    /// The `metrics` body: every counter plus per-endpoint latency — as
    /// stable JSON for tooling and a Prometheus-style `text` exposition
    /// for scrapers. The JSON carries the (bounded) raw latency samples
    /// so a router can aggregate fleet-wide percentiles exactly via
    /// [`Histogram::merge`].
    fn metrics_body(&self) -> String {
        let s = self.ctx.stats.snapshot();
        let uptime_ms = self.ctx.stats.uptime_millis();
        let counters: Vec<(&str, u64)> = vec![
            ("received", s.received),
            ("completed", s.completed),
            ("rejected", s.rejected),
            ("timeouts", s.timeouts),
            ("errors", s.errors),
            ("cache_hits", self.ctx.cache.hits()),
            ("cache_misses", self.ctx.cache.misses()),
            ("cache_entries", self.ctx.cache.len() as u64),
            ("cache_expired", self.ctx.cache.expired()),
            ("cache_invalidations", self.ctx.cache.invalidations()),
            ("jobs_submitted", self.ctx.jobs.submitted()),
            ("jobs_completed", self.ctx.jobs.completed()),
            ("jobs_cancelled", self.ctx.jobs.cancelled()),
            ("jobs_rejected", self.ctx.jobs.rejected()),
            ("jobs_queued", self.ctx.jobs.queued()),
            (
                "jobs_active_installments",
                self.ctx.jobs.active_installments(),
            ),
        ];
        let mut prom = PromText::new();
        prom.gauge("dls_uptime_ms", uptime_ms as f64);
        prom.gauge("dls_queue_depth", self.queue.len() as f64);
        for (name, v) in &counters {
            prom.counter(&format!("dls_{name}_total"), *v as f64);
        }
        let mut latency = Vec::new();
        for (i, &e) in Endpoint::ALL.iter().enumerate() {
            // Re-window the merged shards so the exported sample set (the
            // fleet-aggregation payload) is bounded regardless of worker
            // count; the all-time count stays exact through the merge.
            let merged = self.ctx.stats.merged_latency(e);
            let mut windowed = Histogram::with_cap(LATENCY_SAMPLE_CAP);
            windowed.merge(&merged);
            prom.summary(
                "dls_latency_us",
                &[("endpoint", e.name())],
                &mut windowed,
                i == 0,
            );
            let summary = windowed.summary();
            let nan_safe = |x: f64| if x.is_finite() { x } else { 0.0 };
            latency.push((
                e.name().to_string(),
                Value::Object(vec![
                    ("count".into(), Value::Number(windowed.total_count() as f64)),
                    ("p50_us".into(), Value::Number(nan_safe(summary.p50))),
                    ("p90_us".into(), Value::Number(nan_safe(summary.p90))),
                    ("p99_us".into(), Value::Number(nan_safe(summary.p99))),
                    ("max_us".into(), Value::Number(nan_safe(summary.max))),
                    (
                        "samples".into(),
                        Value::Array(
                            windowed
                                .sorted_samples()
                                .iter()
                                .map(|&v| Value::Number(v))
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        Value::Object(vec![
            ("role".into(), Value::String("shard".into())),
            ("uptime_ms".into(), Value::Number(uptime_ms as f64)),
            (
                "counters".into(),
                Value::Object(
                    counters
                        .iter()
                        .map(|(k, v)| (k.to_string(), Value::Number(*v as f64)))
                        .collect(),
                ),
            ),
            ("queue_depth".into(), Value::Number(self.queue.len() as f64)),
            ("latency_us".into(), Value::Object(latency)),
            ("text".into(), Value::String(prom.render())),
        ])
        .to_json()
    }
}

/// May this connection's `shutdown` op drain the server? Loopback peers
/// always may (the operational harnesses run on the same host); remote
/// peers only when the server was started with `allow_remote_shutdown`.
fn shutdown_permitted(peer_loopback: bool, allow_remote: bool) -> bool {
    peer_loopback || allow_remote
}

/// Handle one framed request line; sends any inline response over `tx`.
fn handle_line(shared: &Shared, line: &str, peer_loopback: bool, tx: &mpsc::Sender<String>) {
    let _span = obs::span!("svc.request");
    shared.ctx.stats.on_received();
    let Request {
        id,
        deadline_ms,
        trace,
        kind,
    } = match handlers::parse_request(line, shared.ctx.quantum()) {
        Ok(r) => r,
        Err((id, msg)) => {
            shared.ctx.stats.on_completed(true);
            let _ = tx.send(handlers::error_response(id, &msg));
            return;
        }
    };
    // The shard half of the fleet's trace-conservation ledger: one
    // receive event per traced line framed off a socket, matched against
    // the router's per-attempt events by `dls-trace --fleet`.
    if let Some(t) = trace {
        obs::event!("svc.receive", "trace" => t);
    }
    match kind {
        RequestKind::Health => {
            shared.ctx.stats.on_completed(false);
            let _ = tx.send(handlers::ok_response(id, None, &shared.health_body()));
        }
        RequestKind::Stats => {
            shared.ctx.stats.on_completed(false);
            let _ = tx.send(handlers::ok_response(id, None, &shared.stats_body()));
        }
        RequestKind::Metrics => {
            shared.ctx.stats.on_completed(false);
            let _ = tx.send(handlers::ok_response(id, None, &shared.metrics_body()));
        }
        RequestKind::Shutdown => {
            if shutdown_permitted(peer_loopback, shared.ctx.allow_remote_shutdown) {
                shared.ctx.stats.on_completed(false);
                let _ = tx.send(handlers::ok_response(id, None, "{\"state\":\"draining\"}"));
                shared.begin_drain();
            } else {
                shared.ctx.stats.on_completed(true);
                let _ = tx.send(handlers::error_response(
                    id,
                    "shutdown refused: only loopback peers may drain this server \
                     (start with --allow-remote-shutdown to override)",
                ));
            }
        }
        RequestKind::Reconfigure { quantum } => {
            // Same gate as `shutdown`: swapping the quantum drops the
            // whole solver cache, which a remote peer must not be able to
            // do to a server that did not opt in.
            if !shutdown_permitted(peer_loopback, shared.ctx.allow_remote_shutdown) {
                shared.ctx.stats.on_completed(true);
                let _ = tx.send(handlers::error_response(
                    id,
                    "reconfigure refused: only loopback peers may reconfigure this server \
                     (start with --allow-remote-shutdown to override)",
                ));
                return;
            }
            let cleared = match quantum {
                Some(q) => {
                    obs::event!("svc.reconfigure");
                    shared.ctx.set_quantum(q)
                }
                None => false,
            };
            shared.ctx.stats.on_completed(false);
            let body = Value::Object(vec![
                ("quantum".into(), Value::Number(shared.ctx.quantum())),
                ("cache_cleared".into(), Value::Bool(cleared)),
                (
                    "cache_entries".into(),
                    Value::Number(shared.ctx.cache.len() as f64),
                ),
            ])
            .to_json();
            let _ = tx.send(handlers::ok_response(id, None, &body));
        }
        RequestKind::Job(op) => match op {
            JobOp::Submit {
                chain,
                load,
                rounds,
                comm_startup,
            } => {
                if shared.ctx.draining.load(Ordering::SeqCst) {
                    shared.ctx.stats.on_rejected();
                    let _ = tx.send(handlers::rejected_response(
                        id,
                        shared.ctx.retry_after_ms,
                        true,
                    ));
                    return;
                }
                // The response is sent by the chain's scheduler thread at
                // job completion (or immediately, as a rejection, when the
                // job queue is at capacity).
                jobs::submit(
                    &shared.ctx,
                    JobSpec {
                        chain,
                        load,
                        rounds,
                        comm_startup,
                    },
                    id,
                    trace,
                    tx.clone(),
                );
            }
            JobOp::Status { job_id, .. } => match jobs::status_body(&shared.ctx, job_id) {
                Ok(body) => {
                    shared.ctx.stats.on_completed(false);
                    let _ = tx.send(handlers::ok_response(id, None, &body));
                }
                Err(msg) => {
                    shared.ctx.stats.on_completed(true);
                    let _ = tx.send(handlers::error_response(id, &msg));
                }
            },
            JobOp::Cancel { job_id, .. } => match jobs::cancel(&shared.ctx, job_id) {
                Ok(body) => {
                    shared.ctx.stats.on_completed(false);
                    let _ = tx.send(handlers::ok_response(id, None, &body));
                }
                Err(msg) => {
                    shared.ctx.stats.on_completed(true);
                    let _ = tx.send(handlers::error_response(id, &msg));
                }
            },
        },
        RequestKind::Work(request) => {
            if shared.ctx.draining.load(Ordering::SeqCst) {
                shared.ctx.stats.on_rejected();
                let _ = tx.send(handlers::rejected_response(
                    id,
                    shared.ctx.retry_after_ms,
                    true,
                ));
                return;
            }
            let deadline = Duration::from_millis(
                deadline_ms.unwrap_or(shared.ctx.default_deadline.as_millis() as u64),
            );
            let job = Job {
                request,
                id,
                deadline,
                enqueued: Instant::now(),
                trace,
                reply: tx.clone(),
            };
            match shared.queue.try_push(job) {
                Ok(()) => {}
                Err((job, PushError::Full)) => {
                    shared.ctx.stats.on_rejected();
                    obs::count!("svc.rejected.backpressure");
                    let _ = tx.send(handlers::rejected_response(
                        job.id,
                        shared.ctx.retry_after_ms,
                        false,
                    ));
                }
                Err((job, PushError::Closed)) => {
                    shared.ctx.stats.on_rejected();
                    let _ = tx.send(handlers::rejected_response(
                        job.id,
                        shared.ctx.retry_after_ms,
                        true,
                    ));
                }
            }
        }
    }
}

/// Reader loop for one connection. Returns when the client disconnects or
/// the server drains.
fn reader_loop(shared: &Shared, stream: TcpStream, tx: mpsc::Sender<String>) {
    let _ = stream.set_nodelay(true);
    // A finite read timeout lets idle connections notice the drain.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let peer_loopback = stream
        .peer_addr()
        .map(|a| a.ip().is_loopback())
        .unwrap_or(false);
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    handle_line(shared, trimmed, peer_loopback, &tx);
                }
                line.clear();
                // Re-check the drain after every line, not only on idle
                // timeouts: a client that pipelines continuously would
                // otherwise never let this thread observe the drain and
                // `join` would hang on it. Work is already rejected as
                // "draining" at this point, so exiting after the response
                // was queued is safe (the writer flushes before closing).
                if shared.ctx.draining.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Partial bytes (if any) stay in `line`; keep reading
                // unless the server is draining.
                if shared.ctx.draining.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Writer loop: serialize responses onto the socket, batching flushes.
fn writer_loop(stream: TcpStream, rx: mpsc::Receiver<String>) {
    let mut w = BufWriter::new(stream);
    while let Ok(response) = rx.recv() {
        if w.write_all(response.as_bytes()).is_err() || w.write_all(b"\n").is_err() {
            return;
        }
        // Batch whatever else is already queued before paying the flush.
        while let Ok(more) = rx.try_recv() {
            if w.write_all(more.as_bytes()).is_err() || w.write_all(b"\n").is_err() {
                return;
            }
        }
        if w.flush().is_err() {
            return;
        }
    }
}

/// A running server; keep it to [`shutdown`](ServerHandle::shutdown) and
/// [`join`](ServerHandle::join).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    pool: Option<WorkerPool>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    writers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared counters (live view).
    pub fn stats(&self) -> &StatsRegistry {
        &self.shared.ctx.stats
    }

    /// Programmatic drain trigger (same as a client `shutdown` op).
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }

    /// Wait for the drain to finish: accept loop, connections, backlog,
    /// sink flush. Returns the final counter snapshot. A drain must have
    /// been initiated (`shutdown` op or [`ServerHandle::shutdown`]).
    pub fn join(mut self) -> crate::stats::StatsSnapshot {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Readers exit on drain; no admission can happen after this point.
        for h in std::mem::take(&mut *self.readers.lock().unwrap()) {
            let _ = h.join();
        }
        // Workers exit once the closed queue is empty.
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
        // Job schedulers exit once their chain queues are empty (no
        // admission can add to them now). They hold reply senders, so
        // they must be joined before the writers below.
        self.shared.ctx.jobs.join_schedulers();
        // Writers exit once every job's reply sender is gone.
        for h in std::mem::take(&mut *self.writers.lock().unwrap()) {
            let _ = h.join();
        }
        obs::flush();
        obs::event!("svc.drain.done");
        self.shared.ctx.stats.snapshot()
    }
}

/// Bind and start serving. Returns once the listener is accepting.
pub fn serve(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let cache = SolverCache::with_ttl(
        config.cache_shards,
        config.cache_capacity_per_shard,
        config.cache_ttl_ms.map(Duration::from_millis),
    );
    // Pin the starting quantization epoch so a later `reconfigure` to a
    // different quantum is detected as a change.
    cache.invalidate_on_quantum_change(config.quantum);
    let ctx = Arc::new(ServiceCtx {
        cache,
        stats: StatsRegistry::new(config.workers),
        draining: AtomicBool::new(false),
        default_deadline: Duration::from_millis(config.default_deadline_ms),
        retry_after_ms: config.retry_after_ms,
        allow_remote_shutdown: config.allow_remote_shutdown,
        quantum_bits: std::sync::atomic::AtomicU64::new(config.quantum.to_bits()),
        obs_memory: config.obs_memory.clone(),
        jobs: crate::jobs::JobRegistry::new(config.job_queue_capacity),
    });
    let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
    let pool = WorkerPool::spawn(config.workers, Arc::clone(&queue), Arc::clone(&ctx));
    let shared = Arc::new(Shared {
        ctx,
        queue,
        addr,
        workers: config.workers,
    });
    let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let writers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept = {
        let shared = Arc::clone(&shared);
        let readers = Arc::clone(&readers);
        let writers = Arc::clone(&writers);
        let max_conns = config.max_conns.max(1);
        std::thread::Builder::new()
            .name("dls-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shared.ctx.draining.load(Ordering::SeqCst) {
                        return; // the poke connection or a late client
                    }
                    let Ok(stream) = stream else { continue };
                    obs::count!("svc.connections");
                    // Reap threads of connections that already closed, so
                    // handles don't accumulate under connection churn
                    // (finished threads are safe to detach by dropping).
                    readers.lock().unwrap().retain(|h| !h.is_finished());
                    writers.lock().unwrap().retain(|h| !h.is_finished());
                    // Accept-side cap: the reap above keeps the live count
                    // honest under churn. A capped client gets a single
                    // parseable rejection line and EOF — it never reaches
                    // the reader/writer threads or the queue.
                    if readers.lock().unwrap().len() >= max_conns {
                        obs::count!("svc.connections.capped");
                        let mut stream = stream;
                        let _ = writeln!(
                            stream,
                            "{}",
                            handlers::conn_limit_response(shared.ctx.retry_after_ms)
                        );
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        continue;
                    }
                    let (tx, rx) = mpsc::channel::<String>();
                    let write_half = match stream.try_clone() {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let writer = std::thread::Builder::new()
                        .name("dls-conn-writer".into())
                        .spawn(move || writer_loop(write_half, rx))
                        .expect("spawn writer");
                    writers.lock().unwrap().push(writer);
                    let shared2 = Arc::clone(&shared);
                    let reader = std::thread::Builder::new()
                        .name("dls-conn-reader".into())
                        .spawn(move || reader_loop(&shared2, stream, tx))
                        .expect("spawn reader");
                    readers.lock().unwrap().push(reader);
                }
            })
            .expect("spawn accept thread")
    };

    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        pool: Some(pool),
        readers,
        writers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shutdown_gated_to_loopback_unless_overridden() {
        assert!(shutdown_permitted(true, false));
        assert!(shutdown_permitted(true, true));
        assert!(shutdown_permitted(false, true));
        assert!(!shutdown_permitted(false, false));
    }
}
