//! A seeded, fault-injecting TCP proxy for resilience drills.
//!
//! The proxy sits between a client (or the router) and one upstream
//! server, forwarding bytes in both directions while injecting faults
//! drawn from a deterministic RNG:
//!
//! * **reset** — drop both halves of the connection mid-stream;
//! * **delay** — stall a chunk for a fixed number of milliseconds;
//! * **partial write** — forward a chunk in two flushes with a pause in
//!   between (exercises partial-line reads downstream);
//! * **corrupt** — XOR `0x80` into one byte of a server→client chunk.
//!   Responses are ASCII JSON, so the flipped high bit always produces
//!   invalid UTF-8 and the client's `read_line` fails loudly — corruption
//!   is *detectable by construction*, never a silently wrong answer.
//!
//! Determinism: every pump direction of every accepted connection gets
//! its own RNG seeded from `(seed, connection, direction)`, so a chaos
//! plan replays identically for an identical byte stream. One draw is
//! made per forwarded chunk, and chunk boundaries follow the OS's TCP
//! read coalescing — so injected-event *counts* may wiggle slightly
//! between runs even with a fixed seed. A shared **event budget** caps
//! the total number of injected faults regardless; once spent, the proxy
//! is transparent. Retrying clients therefore always converge — the
//! harness asserts the *invariants* (termination, bit-identity, ledger),
//! which are exact, not the event tallies, which are not.
//!
//! The upstream may be a fixed address or a resolver closure, so the
//! proxy can follow a supervised shard across restarts (each restart
//! binds a fresh ephemeral port).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// The fault classes the proxy can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Drop the connection (both directions) mid-stream.
    Reset,
    /// Stall a chunk before forwarding it.
    Delay,
    /// Forward a chunk in two flushes with a pause in between.
    PartialWrite,
    /// Flip the high bit of one byte (server→client only).
    Corrupt,
}

/// Per-chunk fault probabilities and the global event budget.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// RNG seed; identical seeds replay identical fault schedules for
    /// identical byte streams.
    pub seed: u64,
    /// Per-chunk probability of a connection reset.
    pub reset_prob: f64,
    /// Per-chunk probability of a delay.
    pub delay_prob: f64,
    /// Delay length when one fires.
    pub delay: Duration,
    /// Per-chunk probability of a partial (split) write.
    pub partial_prob: f64,
    /// Per-chunk probability of corrupting one response byte
    /// (server→client direction only).
    pub corrupt_prob: f64,
    /// Total faults the proxy may inject before turning transparent.
    /// Guarantees retrying clients eventually succeed.
    pub event_budget: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            reset_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::from_millis(20),
            partial_prob: 0.0,
            corrupt_prob: 0.0,
            event_budget: u64::MAX,
        }
    }
}

impl ChaosConfig {
    /// A transparent proxy (no faults): the control arm of E25.
    pub fn transparent(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }
}

/// Counters of what the proxy actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Connections accepted.
    pub connections: u64,
    /// Resets injected.
    pub resets: u64,
    /// Delays injected.
    pub delays: u64,
    /// Partial writes injected.
    pub partial_writes: u64,
    /// Bytes corrupted.
    pub corruptions: u64,
    /// Connections severed by [`ChaosProxy::sever_all`].
    pub severed: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    resets: AtomicU64,
    delays: AtomicU64,
    partial_writes: AtomicU64,
    corruptions: AtomicU64,
    severed: AtomicU64,
}

/// Resolves the current upstream address (shards move across restarts).
pub type UpstreamResolver = Arc<dyn Fn() -> Option<SocketAddr> + Send + Sync>;

struct Inner {
    config: ChaosConfig,
    budget: AtomicU64,
    counters: Counters,
    stopped: AtomicBool,
    /// Write halves of live connections, for [`ChaosProxy::sever_all`].
    live: Mutex<Vec<TcpStream>>,
}

impl Inner {
    /// Spend one unit of the event budget; `false` = budget exhausted,
    /// forward transparently.
    fn try_spend(&self) -> bool {
        self.budget
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
            .is_ok()
    }
}

/// A running fault-injecting proxy; see the module docs.
pub struct ChaosProxy {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
}

const CHUNK: usize = 4096;

impl ChaosProxy {
    /// Proxy to a fixed upstream address.
    pub fn spawn(upstream: SocketAddr, config: ChaosConfig) -> std::io::Result<Self> {
        Self::spawn_dynamic(Arc::new(move || Some(upstream)), config)
    }

    /// Proxy to whatever address `resolver` currently returns (e.g. a
    /// supervised shard slot). A `None` resolution refuses the connection.
    pub fn spawn_dynamic(resolver: UpstreamResolver, config: ChaosConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            budget: AtomicU64::new(config.event_budget),
            config,
            counters: Counters::default(),
            stopped: AtomicBool::new(false),
            live: Mutex::new(Vec::new()),
        });
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("chaos-accept".into())
                .spawn(move || {
                    let mut conn_id: u64 = 0;
                    for stream in listener.incoming() {
                        if inner.stopped.load(Ordering::SeqCst) {
                            return;
                        }
                        let Ok(client) = stream else { continue };
                        inner.counters.connections.fetch_add(1, Ordering::Relaxed);
                        let Some(target) = resolver() else {
                            let _ = client.shutdown(Shutdown::Both);
                            continue;
                        };
                        let Ok(server) =
                            TcpStream::connect_timeout(&target, Duration::from_secs(2))
                        else {
                            let _ = client.shutdown(Shutdown::Both);
                            continue;
                        };
                        conn_id += 1;
                        spawn_pumps(&inner, conn_id, client, server);
                    }
                })
                .expect("spawn chaos accept thread")
        };
        Ok(Self {
            addr,
            inner,
            accept: Some(accept),
        })
    }

    /// The proxy's listen address (point clients here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Abruptly drop every live proxied connection (simulated partition).
    /// New connections still go through.
    pub fn sever_all(&self) {
        let mut live = self.inner.live.lock().unwrap();
        for s in live.drain(..) {
            self.inner.counters.severed.fetch_add(1, Ordering::Relaxed);
            let _ = s.shutdown(Shutdown::Both);
        }
    }

    /// Faults the budget still allows.
    pub fn budget_remaining(&self) -> u64 {
        self.inner.budget.load(Ordering::SeqCst)
    }

    /// Snapshot the injection counters.
    pub fn stats(&self) -> ChaosStats {
        let c = &self.inner.counters;
        ChaosStats {
            connections: c.connections.load(Ordering::Relaxed),
            resets: c.resets.load(Ordering::Relaxed),
            delays: c.delays.load(Ordering::Relaxed),
            partial_writes: c.partial_writes.load(Ordering::Relaxed),
            corruptions: c.corruptions.load(Ordering::Relaxed),
            severed: c.severed.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting and sever all live connections.
    pub fn stop(&mut self) {
        if self.inner.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        // Poke the accept loop out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        self.sever_all();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn spawn_pumps(inner: &Arc<Inner>, conn_id: u64, client: TcpStream, server: TcpStream) {
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    // Register both write halves so `sever_all` can cut the connection.
    {
        let mut live = inner.live.lock().unwrap();
        live.retain(|s| s.peer_addr().is_ok());
        if let (Ok(c), Ok(s)) = (client.try_clone(), server.try_clone()) {
            live.push(c);
            live.push(s);
        }
    }
    for (dir, src, dst) in [
        (0u64, client.try_clone(), server.try_clone()),
        (1u64, server.try_clone(), client.try_clone()),
    ] {
        let (Ok(src), Ok(dst)) = (src, dst) else {
            let _ = client.shutdown(Shutdown::Both);
            let _ = server.shutdown(Shutdown::Both);
            return;
        };
        let inner = Arc::clone(inner);
        let seed = inner
            .config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(conn_id * 2 + dir);
        let _ = std::thread::Builder::new()
            .name(format!("chaos-pump-{conn_id}-{dir}"))
            .spawn(move || pump(&inner, dir, src, dst, StdRng::seed_from_u64(seed)));
    }
}

/// Forward `src` → `dst` chunk-by-chunk, injecting faults. `dir` 0 is
/// client→server, 1 is server→client (corruption only fires on 1, so a
/// corrupted *request* can never reach a shard and mutate real state).
fn pump(inner: &Arc<Inner>, dir: u64, mut src: TcpStream, dst: TcpStream, mut rng: StdRng) {
    let cfg = &inner.config;
    let mut dst = dst;
    let mut buf = [0u8; CHUNK];
    loop {
        let n = match src.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let chunk = &mut buf[..n];
        // Draw every fault decision unconditionally so the RNG stream
        // stays aligned across runs regardless of which faults fire.
        let reset = rng.gen_bool(cfg.reset_prob);
        let delay = rng.gen_bool(cfg.delay_prob);
        let partial = rng.gen_bool(cfg.partial_prob);
        let corrupt = rng.gen_bool(cfg.corrupt_prob);
        let victim = rng.gen_range(0..CHUNK) % n.max(1);

        if reset && inner.try_spend() {
            inner.counters.resets.fetch_add(1, Ordering::Relaxed);
            break;
        }
        if delay && inner.try_spend() {
            inner.counters.delays.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(cfg.delay);
        }
        if dir == 1 && corrupt && inner.try_spend() {
            inner.counters.corruptions.fetch_add(1, Ordering::Relaxed);
            chunk[victim] ^= 0x80;
        }
        let wrote = if partial && n > 1 && inner.try_spend() {
            inner
                .counters
                .partial_writes
                .fetch_add(1, Ordering::Relaxed);
            let mid = n / 2;
            dst.write_all(&chunk[..mid])
                .and_then(|_| dst.flush())
                .map(|_| std::thread::sleep(Duration::from_millis(5)))
                .and_then(|_| dst.write_all(&chunk[mid..]))
        } else {
            dst.write_all(chunk)
        };
        if wrote.and_then(|_| dst.flush()).is_err() {
            break;
        }
    }
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// A trivial upstream echo server for proxy tests.
    fn echo_server() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for stream in listener.incoming().flatten() {
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut stream = stream;
                    let mut line = String::new();
                    while let Ok(n) = reader.read_line(&mut line) {
                        if n == 0 {
                            break;
                        }
                        if stream.write_all(line.as_bytes()).is_err() {
                            break;
                        }
                        line.clear();
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn transparent_proxy_round_trips() {
        let upstream = echo_server();
        let proxy = ChaosProxy::spawn(upstream, ChaosConfig::transparent(1)).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"hello\n").unwrap();
        let mut reader = BufReader::new(c.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "hello\n");
        assert_eq!(proxy.stats().connections, 1);
        assert_eq!(proxy.stats().resets, 0);
    }

    #[test]
    fn budget_bounds_injected_events() {
        let upstream = echo_server();
        let config = ChaosConfig {
            seed: 7,
            delay_prob: 1.0,
            delay: Duration::from_millis(1),
            event_budget: 3,
            ..ChaosConfig::default()
        };
        let proxy = ChaosProxy::spawn(upstream, config).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        let mut reader = BufReader::new(c.try_clone().unwrap());
        for i in 0..10 {
            c.write_all(format!("m{i}\n").as_bytes()).unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line, format!("m{i}\n"));
        }
        let s = proxy.stats();
        assert_eq!(s.delays, 3, "budget caps events: {s:?}");
        assert_eq!(proxy.budget_remaining(), 0);
    }

    #[test]
    fn corruption_flips_a_high_bit_in_responses() {
        let upstream = echo_server();
        let config = ChaosConfig {
            seed: 3,
            corrupt_prob: 1.0,
            event_budget: 1,
            ..ChaosConfig::default()
        };
        let proxy = ChaosProxy::spawn(upstream, config).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"abcdef\n").unwrap();
        let mut buf = [0u8; 16];
        let n = c.read(&mut buf).unwrap();
        assert_eq!(n, 7);
        let corrupted = buf[..n].iter().filter(|&&b| b & 0x80 != 0).count();
        assert_eq!(corrupted, 1, "exactly one byte has the high bit set");
        assert_eq!(proxy.stats().corruptions, 1);
        // Budget spent: the next round-trip is clean.
        c.write_all(b"ghijkl\n").unwrap();
        let mut line = String::new();
        let mut reader = BufReader::new(c);
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "ghijkl\n");
    }

    #[test]
    fn sever_all_drops_live_connections() {
        let upstream = echo_server();
        let proxy = ChaosProxy::spawn(upstream, ChaosConfig::transparent(9)).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"ping\n").unwrap();
        let mut reader = BufReader::new(c.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        proxy.sever_all();
        // The cut surfaces as EOF (or a reset error) on the next read.
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => {}
            other => panic!("expected severed connection, got {other:?} {line:?}"),
        }
        assert!(proxy.stats().severed >= 2);
    }
}
