//! Request parsing and the per-endpoint handlers.
//!
//! The wire protocol is newline-delimited JSON, parsed with
//! [`minijson::Value::parse`]. Every request is an object with an `"op"`
//! and an optional integer `"id"` that is echoed verbatim in the response,
//! so clients may pipeline requests and match completions out of order.
//!
//! Work ops (`solve`, `ft_run`) are executed by the worker pool; control
//! ops (`health`, `stats`, `shutdown`) are answered inline by the
//! connection thread so they keep working while the queue is saturated.
//!
//! Solve reports are **canonical-deterministic**: the handler solves the
//! quantized chain ([`crate::quant`]), so the serialized body is a pure
//! function of the cache key and a cache hit returns bytes identical to
//! the cold solve it replaced.

use crate::quant::{self, CanonicalChain};
use crate::stats::Endpoint;
use mechanism::{Agent, DlsLbl};
use minijson::Value;
use protocol::ft_runner;
use protocol::{FaultPlan, Scenario};

/// A parsed work request, ready for a worker.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkRequest {
    /// Cached DLS-LBL solve + payments on a canonical chain.
    Solve(CanonicalChain),
    /// Fault-injected protocol run.
    FtRun {
        /// Root rate `w_0`.
        root_rate: f64,
        /// True rates `t_1 … t_m`.
        rates: Vec<f64>,
        /// Link rates `z_1 … z_m`.
        links: Vec<f64>,
        /// Scenario RNG seed.
        seed: u64,
        /// Optional single crash `(node, phase, progress)`.
        crash: Option<(usize, u8, f64)>,
    },
}

impl WorkRequest {
    /// Which metering endpoint this request belongs to.
    pub fn endpoint(&self) -> Endpoint {
        match self {
            WorkRequest::Solve(_) => Endpoint::Solve,
            WorkRequest::FtRun { .. } => Endpoint::FtRun,
        }
    }
}

/// A job-queue operation ([`crate::jobs`]). All three carry the chain
/// fields, so a router can map them onto the shard that owns the chain's
/// queue (the routing key is the canonical [`ChainKey`](crate::quant::ChainKey),
/// exactly as for `solve`).
#[derive(Debug, Clone, PartialEq)]
pub enum JobOp {
    /// Enqueue a divisible load on the chain's job queue. The response is
    /// sent at job completion (solve-like blocking semantics).
    Submit {
        /// The canonical chain whose queue the job joins.
        chain: CanonicalChain,
        /// Total load in units of the chain's unit workload.
        load: f64,
        /// Explicit installment count; `None` = the pipelining rule picks.
        rounds: Option<usize>,
        /// Per-installment communication startup.
        comm_startup: f64,
    },
    /// Report a job's lifecycle state.
    Status {
        /// Chain fields, used only for routing.
        chain: CanonicalChain,
        /// The id returned in the submit response / status records.
        job_id: u64,
    },
    /// Cancel a still-queued job.
    Cancel {
        /// Chain fields, used only for routing.
        chain: CanonicalChain,
        /// The id of the queued job to cancel.
        job_id: u64,
    },
}

impl JobOp {
    /// The canonical chain key this op routes by.
    pub fn chain_key(&self) -> &crate::quant::ChainKey {
        match self {
            JobOp::Submit { chain, .. }
            | JobOp::Status { chain, .. }
            | JobOp::Cancel { chain, .. } => &chain.key,
        }
    }
}

/// What a request line asks the server to do.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestKind {
    /// Dispatch to the worker pool.
    Work(WorkRequest),
    /// A job-queue op, dispatched to the chain's scheduler
    /// ([`crate::jobs`]); `submit_job` answers at completion, `job_status`
    /// and `cancel_job` answer inline.
    Job(JobOp),
    /// Liveness probe (inline).
    Health,
    /// Counters + latency histograms (inline).
    Stats,
    /// Stable JSON + Prometheus-style text exposition of every counter
    /// and latency histogram (inline). The router answers this itself,
    /// aggregating fleet-wide over the shards' own `metrics` bodies.
    Metrics,
    /// Begin graceful drain (inline).
    Shutdown,
    /// Swap runtime tunables (inline, gated like `shutdown`). Today the
    /// only tunable is the solver-cache quantum; changing it drops every
    /// cache entry so a key from the old quantization epoch can never
    /// answer a request from the new one.
    Reconfigure {
        /// New quantization step (`None` = report the current one).
        quantum: Option<f64>,
    },
}

/// Smallest accepted per-request deadline. A `deadline_ms` of 0 would be
/// a guaranteed timeout — a request whose only effect is burning a queue
/// slot — so it is rejected at parse time instead of admitted.
pub const MIN_DEADLINE_MS: u64 = 1;

/// Largest accepted per-request deadline (1 hour): a remote client may
/// not park work in the queue indefinitely.
pub const MAX_DEADLINE_MS: u64 = 3_600_000;

/// Smallest accepted `reconfigure` quantum. Below this, `rate / quantum`
/// overflows [`quant::MAX_TICKS`](crate::quant::MAX_TICKS) for every
/// workload-range rate and the server would reject all solves.
pub const MIN_QUANTUM: f64 = 1e-15;

/// Largest accepted `reconfigure` quantum: a quantum of 1.0 already
/// collapses the whole workload rate range onto a handful of ticks;
/// anything coarser is a configuration error.
pub const MAX_QUANTUM: f64 = 1.0;

/// Smallest accepted `submit_job` load: settlement divides by load-scaled
/// allocations, so degenerate near-zero jobs are rejected at parse time.
pub const MIN_JOB_LOAD: f64 = 1e-6;

/// Largest accepted `submit_job` load.
pub const MAX_JOB_LOAD: f64 = 1e6;

/// Largest accepted explicit `rounds` on `submit_job`.
pub const MAX_JOB_ROUNDS: usize = 64;

/// Largest accepted per-installment `comm_startup`.
pub const MAX_COMM_STARTUP: f64 = 1e3;

/// A parsed request envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<i64>,
    /// Per-request deadline override (milliseconds in queue + service),
    /// validated into `[MIN_DEADLINE_MS, MAX_DEADLINE_MS]` at parse time.
    pub deadline_ms: Option<u64>,
    /// Cross-hop trace id. Client-settable; the router injects one into
    /// work requests when tracing is enabled and the field is absent.
    /// Tags every `obs` span/event the request touches on every hop.
    /// Never echoed in responses, so routed-response byte-equality is
    /// unaffected.
    pub trace: Option<u64>,
    /// The operation.
    pub kind: RequestKind,
}

fn f64_field(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

fn vec_field(v: &Value, key: &str) -> Result<Vec<f64>, String> {
    let arr = v
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("missing or non-array field {key:?}"))?;
    arr.iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| format!("non-numeric entry in {key:?}"))
        })
        .collect()
}

/// Parse one request line. `quantum` is the solver-cache quantization
/// step. Errors carry the request's `id` when one was parseable, so the
/// error response stays matchable by pipelining clients.
pub fn parse_request(line: &str, quantum: f64) -> Result<Request, (Option<i64>, String)> {
    let v = Value::parse(line).map_err(|e| (None, e.to_string()))?;
    let id = v.get("id").and_then(Value::as_i64);
    parse_envelope(&v, quantum, id).map_err(|msg| (id, msg))
}

fn parse_envelope(v: &Value, quantum: f64, id: Option<i64>) -> Result<Request, String> {
    let deadline_ms = match v.get("deadline_ms") {
        None | Some(Value::Null) => None,
        Some(d) => Some(
            d.as_u64()
                .filter(|ms| (MIN_DEADLINE_MS..=MAX_DEADLINE_MS).contains(ms))
                .ok_or_else(|| {
                    format!(
                        "deadline_ms must be an integer in [{MIN_DEADLINE_MS}, {MAX_DEADLINE_MS}]"
                    )
                })?,
        ),
    };
    // A malformed trace id is dropped, not rejected: tracing is advisory
    // and must never change a request's outcome.
    let trace = v.get("trace").and_then(Value::as_u64).filter(|&t| t > 0);
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing string field \"op\"".to_string())?;
    let kind = match op {
        "health" => RequestKind::Health,
        "stats" => RequestKind::Stats,
        "metrics" => RequestKind::Metrics,
        "shutdown" => RequestKind::Shutdown,
        "reconfigure" => {
            let quantum = match v.get("quantum") {
                None | Some(Value::Null) => None,
                Some(q) => Some(
                    q.as_f64()
                        .filter(|&q| q.is_finite() && (MIN_QUANTUM..=MAX_QUANTUM).contains(&q))
                        .ok_or_else(|| {
                            format!("quantum must be a number in [{MIN_QUANTUM:e}, {MAX_QUANTUM}]")
                        })?,
                ),
            };
            RequestKind::Reconfigure { quantum }
        }
        "solve" => RequestKind::Work(WorkRequest::Solve(parse_chain(v, quantum)?)),
        "submit_job" => {
            let chain = parse_chain(v, quantum)?;
            let load = match v.get("load") {
                None | Some(Value::Null) => 1.0,
                Some(l) => l
                    .as_f64()
                    .filter(|l| l.is_finite() && (MIN_JOB_LOAD..=MAX_JOB_LOAD).contains(l))
                    .ok_or_else(|| {
                        format!("load must be a number in [{MIN_JOB_LOAD:e}, {MAX_JOB_LOAD:e}]")
                    })?,
            };
            let rounds = match v.get("rounds") {
                None | Some(Value::Null) => None,
                Some(r) => Some(
                    r.as_u64()
                        .filter(|&r| r >= 1 && r <= MAX_JOB_ROUNDS as u64)
                        .ok_or_else(|| {
                            format!("rounds must be an integer in [1, {MAX_JOB_ROUNDS}]")
                        })? as usize,
                ),
            };
            let comm_startup = match v.get("comm_startup") {
                None | Some(Value::Null) => 0.0,
                Some(c) => c
                    .as_f64()
                    .filter(|c| c.is_finite() && (0.0..=MAX_COMM_STARTUP).contains(c))
                    .ok_or_else(|| {
                        format!("comm_startup must be a number in [0, {MAX_COMM_STARTUP}]")
                    })?,
            };
            RequestKind::Job(JobOp::Submit {
                chain,
                load,
                rounds,
                comm_startup,
            })
        }
        "job_status" => RequestKind::Job(JobOp::Status {
            chain: parse_chain(v, quantum)?,
            job_id: job_id_field(v)?,
        }),
        "cancel_job" => RequestKind::Job(JobOp::Cancel {
            chain: parse_chain(v, quantum)?,
            job_id: job_id_field(v)?,
        }),
        "ft_run" => {
            let root_rate = f64_field(v, "root_rate")?;
            let rates = vec_field(v, "rates")?;
            let links = vec_field(v, "links")?;
            let seed = v.get("seed").and_then(Value::as_u64).unwrap_or(0);
            let crash = match v.get("crash") {
                None | Some(Value::Null) => None,
                Some(c) => {
                    let node = c
                        .get("node")
                        .and_then(Value::as_u64)
                        .ok_or("crash.node must be a positive integer")?
                        as usize;
                    let phase = c
                        .get("phase")
                        .and_then(Value::as_u64)
                        .ok_or("crash.phase must be 1..=4")? as u8;
                    let progress = c.get("progress").and_then(Value::as_f64).unwrap_or(0.5);
                    Some((node, phase, progress))
                }
            };
            RequestKind::Work(WorkRequest::FtRun {
                root_rate,
                rates,
                links,
                seed,
                crash,
            })
        }
        other => return Err(format!("unknown op {other:?}")),
    };
    Ok(Request {
        id,
        deadline_ms,
        trace,
        kind,
    })
}

/// The chain fields shared by `solve` and every job op.
fn parse_chain(v: &Value, quantum: f64) -> Result<CanonicalChain, String> {
    let root = f64_field(v, "root_rate")?;
    let links = vec_field(v, "links")?;
    let bids = vec_field(v, "bids")?;
    quant::canonicalize(root, &links, &bids, quantum).ok_or_else(|| {
        "invalid chain: rates must be finite, positive, representable, with links.len() == bids.len() >= 1"
            .to_string()
    })
}

fn job_id_field(v: &Value) -> Result<u64, String> {
    v.get("job_id")
        .and_then(Value::as_u64)
        .filter(|&id| id >= 1)
        .ok_or_else(|| "job_id must be a positive integer".to_string())
}

fn numbers(xs: impl IntoIterator<Item = f64>) -> Value {
    Value::Array(xs.into_iter().map(Value::Number).collect())
}

/// Solve + settle the canonical chain and serialize the report. A pure
/// function of the canonical chain — the solver-cache value.
pub fn solve_body(chain: &CanonicalChain) -> String {
    let _span = obs::span!("svc.solve", "m" => chain.key.m);
    let mech = DlsLbl::new(chain.root_rate, chain.link_rates.clone());
    let agents: Vec<Agent> = chain.bids.iter().map(|&b| Agent::new(b)).collect();
    let outcome = mech.settle_truthful(&agents);
    let mut alloc = vec![outcome.root_load];
    alloc.extend(outcome.agents.iter().map(|a| a.assigned_load));
    Value::Object(vec![
        ("m".into(), Value::Number(chain.key.m as f64)),
        (
            "makespan".into(),
            Value::Number(outcome.solution.makespan()),
        ),
        ("alloc".into(), numbers(alloc)),
        (
            "payments".into(),
            numbers(outcome.agents.iter().map(|a| a.breakdown.payment)),
        ),
        (
            "utilities".into(),
            numbers(outcome.agents.iter().map(|a| a.breakdown.utility)),
        ),
        (
            "total_payment".into(),
            Value::Number(outcome.total_payment()),
        ),
    ])
    .to_json()
}

/// Run a (possibly fault-injected) protocol execution and serialize the
/// report.
pub fn ft_body(
    root_rate: f64,
    rates: &[f64],
    links: &[f64],
    seed: u64,
    crash: Option<(usize, u8, f64)>,
) -> Result<String, String> {
    let _span = obs::span!("svc.ft_run", "m" => rates.len());
    if rates.len() != links.len() || rates.is_empty() {
        return Err("rates and links must be equal-length and non-empty".into());
    }
    let scenario = Scenario::honest(root_rate, rates.to_vec(), links.to_vec()).with_seed(seed);
    scenario.validate().map_err(|e| format!("{e:?}"))?;
    let plan = match crash {
        Some((node, phase, progress)) => FaultPlan::crash(node, phase, progress),
        None => FaultPlan::none(),
    };
    plan.validate(rates.len()).map_err(|e| format!("{e:?}"))?;
    let report = ft_runner::run_with_faults(&scenario, &plan).map_err(|e| format!("{e:?}"))?;
    Ok(Value::Object(vec![
        ("m".into(), Value::Number(rates.len() as f64)),
        ("makespan".into(), Value::Number(report.makespan)),
        ("base_makespan".into(), Value::Number(report.base_makespan)),
        ("overhead".into(), Value::Number(report.overhead())),
        (
            "load_conserved".into(),
            Value::Bool(report.load_conserved(1e-9)),
        ),
        (
            "crashed".into(),
            numbers(report.crashed.iter().map(|&n| n as f64)),
        ),
        (
            "utilities".into(),
            numbers(report.net_utilities.iter().copied()),
        ),
    ])
    .to_json())
}

fn id_prefix(id: Option<i64>) -> String {
    match id {
        Some(id) => format!("{{\"id\":{id},"),
        None => "{".to_string(),
    }
}

/// An `ok` response around a serialized result body.
pub fn ok_response(id: Option<i64>, cached: Option<bool>, body: &str) -> String {
    let cached = match cached {
        Some(true) => "\"cached\":true,",
        Some(false) => "\"cached\":false,",
        None => "",
    };
    format!(
        "{}\"status\":\"ok\",{}\"result\":{}}}",
        id_prefix(id),
        cached,
        body
    )
}

/// An `error` response (malformed request or failed execution).
pub fn error_response(id: Option<i64>, message: &str) -> String {
    format!(
        "{}\"status\":\"error\",\"error\":{}}}",
        id_prefix(id),
        Value::String(message.to_string()).to_json()
    )
}

/// A backpressure rejection with a retry hint.
pub fn rejected_response(id: Option<i64>, retry_after_ms: u64, draining: bool) -> String {
    format!(
        "{}\"status\":\"rejected\",\"reason\":\"{}\",\"retry_after_ms\":{}}}",
        id_prefix(id),
        if draining { "draining" } else { "backpressure" },
        retry_after_ms
    )
}

/// A router-level rejection: no shard could take the request (all dead,
/// draining, or unreachable). Carries the same retry contract as a
/// backpressure rejection so resilient clients back off and try again.
pub fn unavailable_response(id: Option<i64>, retry_after_ms: u64) -> String {
    format!(
        "{}\"status\":\"rejected\",\"reason\":\"unavailable\",\"retry_after_ms\":{}}}",
        id_prefix(id),
        retry_after_ms
    )
}

/// An accept-side rejection: the server is at its connection cap. Sent
/// once on the fresh socket (no request was read, so there is no id),
/// then the connection is closed.
pub fn conn_limit_response(retry_after_ms: u64) -> String {
    format!(
        "{{\"status\":\"rejected\",\"reason\":\"connection-limit\",\"retry_after_ms\":{retry_after_ms}}}"
    )
}

/// A deadline-exceeded response.
pub fn timeout_response(id: Option<i64>, deadline_ms: u64) -> String {
    format!(
        "{}\"status\":\"timeout\",\"deadline_ms\":{}}}",
        id_prefix(id),
        deadline_ms
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_solve_request() {
        let r = parse_request(
            r#"{"op":"solve","id":7,"root_rate":1.0,"links":[0.2,0.1],"bids":[2.0,0.5]}"#,
            1e-9,
        )
        .unwrap();
        assert_eq!(r.id, Some(7));
        match r.kind {
            RequestKind::Work(WorkRequest::Solve(chain)) => {
                assert_eq!(chain.key.m, 2);
                assert_eq!(chain.bids, vec![2.0, 0.5]);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn parses_submit_job_with_defaults() {
        let r = parse_request(
            r#"{"op":"submit_job","id":9,"root_rate":1.0,"links":[0.2,0.1],"bids":[2.0,0.5]}"#,
            1e-9,
        )
        .unwrap();
        match r.kind {
            RequestKind::Job(JobOp::Submit {
                chain,
                load,
                rounds,
                comm_startup,
            }) => {
                assert_eq!(chain.key.m, 2);
                assert_eq!(load, 1.0);
                assert_eq!(rounds, None);
                assert_eq!(comm_startup, 0.0);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn submit_job_validates_load_rounds_and_startup() {
        let line = |extra: &str| {
            format!(r#"{{"op":"submit_job","root_rate":1.0,"links":[0.2],"bids":[2.0]{extra}}}"#)
        };
        let ok =
            parse_request(&line(r#","load":2.5,"rounds":4,"comm_startup":0.05"#), 1e-9).unwrap();
        match ok.kind {
            RequestKind::Job(JobOp::Submit {
                load,
                rounds,
                comm_startup,
                ..
            }) => {
                assert_eq!(load, 2.5);
                assert_eq!(rounds, Some(4));
                assert_eq!(comm_startup, 0.05);
            }
            other => panic!("unexpected kind {other:?}"),
        }
        for bad in [
            r#","load":0"#,
            r#","load":-1"#,
            r#","load":1e9"#,
            r#","load":"big""#,
            r#","rounds":0"#,
            r#","rounds":65"#,
            r#","rounds":2.5"#,
            r#","comm_startup":-0.1"#,
            r#","comm_startup":1e9"#,
        ] {
            assert!(parse_request(&line(bad), 1e-9).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn parses_job_status_and_cancel_with_routing_chain() {
        for op in ["job_status", "cancel_job"] {
            let r = parse_request(
                &format!(
                    r#"{{"op":"{op}","root_rate":1.0,"links":[0.2],"bids":[2.0],"job_id":7}}"#
                ),
                1e-9,
            )
            .unwrap();
            match r.kind {
                RequestKind::Job(JobOp::Status { chain, job_id })
                | RequestKind::Job(JobOp::Cancel { chain, job_id }) => {
                    assert_eq!(chain.key.m, 1);
                    assert_eq!(job_id, 7);
                }
                other => panic!("unexpected kind {other:?}"),
            }
            // job_id is mandatory and must be positive.
            for bad in [
                format!(r#"{{"op":"{op}","root_rate":1.0,"links":[0.2],"bids":[2.0]}}"#),
                format!(r#"{{"op":"{op}","root_rate":1.0,"links":[0.2],"bids":[2.0],"job_id":0}}"#),
            ] {
                assert!(parse_request(&bad, 1e-9).is_err());
            }
        }
    }

    #[test]
    fn job_ops_share_the_solve_chain_key() {
        let solve = parse_request(
            r#"{"op":"solve","root_rate":1.0,"links":[0.2,0.1],"bids":[2.0,0.5]}"#,
            1e-9,
        )
        .unwrap();
        let submit = parse_request(
            r#"{"op":"submit_job","root_rate":1.0,"links":[0.2,0.1],"bids":[2.0,0.5]}"#,
            1e-9,
        )
        .unwrap();
        let solve_key = match solve.kind {
            RequestKind::Work(WorkRequest::Solve(chain)) => chain.key,
            other => panic!("unexpected kind {other:?}"),
        };
        match submit.kind {
            RequestKind::Job(op) => assert_eq!(op.chain_key(), &solve_key),
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn deadline_is_validated_at_parse_time() {
        let line = |d: &str| format!(r#"{{"op":"health","deadline_ms":{d}}}"#);
        assert_eq!(
            parse_request(&line("250"), 1e-9).unwrap().deadline_ms,
            Some(250)
        );
        assert!(parse_request(&line("0"), 1e-9).is_err());
        assert!(parse_request(&line("-5"), 1e-9).is_err());
        assert!(parse_request(&line("3600001"), 1e-9).is_err());
        assert!(parse_request(&line("\"soon\""), 1e-9).is_err());
        assert_eq!(
            parse_request(&line("null"), 1e-9).unwrap().deadline_ms,
            None
        );
        assert_eq!(
            parse_request(r#"{"op":"health"}"#, 1e-9)
                .unwrap()
                .deadline_ms,
            None
        );
    }

    #[test]
    fn parses_reconfigure_and_validates_quantum() {
        assert_eq!(
            parse_request(r#"{"op":"reconfigure","quantum":1e-6}"#, 1e-9)
                .unwrap()
                .kind,
            RequestKind::Reconfigure {
                quantum: Some(1e-6)
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"reconfigure"}"#, 1e-9).unwrap().kind,
            RequestKind::Reconfigure { quantum: None }
        );
        for bad in ["0", "-1e-9", "2.0", "1e-20", "\"tiny\""] {
            let line = format!(r#"{{"op":"reconfigure","quantum":{bad}}}"#);
            assert!(parse_request(&line, 1e-9).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn trace_field_is_parsed_and_bad_traces_are_dropped() {
        let r = parse_request(r#"{"op":"health","trace":42}"#, 1e-9).unwrap();
        assert_eq!(r.trace, Some(42));
        // trace is advisory: malformed values never fail the request.
        for bad in ["0", "-7", "1.5", "\"abc\"", "null"] {
            let line = format!(r#"{{"op":"health","trace":{bad}}}"#);
            assert_eq!(parse_request(&line, 1e-9).unwrap().trace, None);
        }
        assert_eq!(
            parse_request(r#"{"op":"health"}"#, 1e-9).unwrap().trace,
            None
        );
    }

    #[test]
    fn parses_metrics_op() {
        let r = parse_request(r#"{"op":"metrics","id":5}"#, 1e-9).unwrap();
        assert_eq!(r.kind, RequestKind::Metrics);
        assert_eq!(r.id, Some(5));
    }

    #[test]
    fn parses_control_ops_and_rejects_unknown() {
        assert_eq!(
            parse_request(r#"{"op":"health"}"#, 1e-9).unwrap().kind,
            RequestKind::Health
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown","id":-3}"#, 1e-9)
                .unwrap()
                .id,
            Some(-3)
        );
        assert!(parse_request(r#"{"op":"mine_bitcoin"}"#, 1e-9).is_err());
        assert!(parse_request("not json", 1e-9).is_err());
        assert!(parse_request(r#"{"id":1}"#, 1e-9).is_err());
    }

    #[test]
    fn solve_body_is_deterministic_and_parses() {
        let chain = quant::canonicalize(1.0, &[0.2, 0.1, 0.7], &[2.0, 0.5, 4.0], 1e-9).unwrap();
        let a = solve_body(&chain);
        let b = solve_body(&chain);
        assert_eq!(a, b);
        let v = Value::parse(&a).unwrap();
        assert_eq!(v.get("m").unwrap().as_u64(), Some(3));
        let alloc = v.get("alloc").unwrap().as_array().unwrap();
        assert_eq!(alloc.len(), 4);
        let total: f64 = alloc.iter().map(|x| x.as_f64().unwrap()).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ft_body_reports_a_crash_run() {
        let body = ft_body(
            1.0,
            &[2.0, 0.5, 4.0],
            &[0.2, 0.1, 0.7],
            42,
            Some((2, 3, 0.5)),
        )
        .unwrap();
        let v = Value::parse(&body).unwrap();
        assert_eq!(v.get("load_conserved").unwrap().as_bool(), Some(true));
        let crashed = v.get("crashed").unwrap().as_array().unwrap();
        assert_eq!(crashed[0].as_u64(), Some(2));
        assert!(v.get("overhead").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn ft_body_rejects_bad_plans() {
        assert!(ft_body(1.0, &[], &[], 0, None).is_err());
        assert!(ft_body(1.0, &[2.0], &[0.2], 0, Some((5, 3, 0.5))).is_err());
    }

    #[test]
    fn response_envelopes_are_valid_json() {
        for s in [
            ok_response(Some(3), Some(true), r#"{"x":1}"#),
            ok_response(None, None, "{}"),
            error_response(Some(-1), "bad \"thing\""),
            rejected_response(None, 25, false),
            rejected_response(Some(9), 100, true),
            unavailable_response(Some(4), 50),
            conn_limit_response(25),
            timeout_response(Some(2), 250),
        ] {
            let v = Value::parse(&s).unwrap_or_else(|e| panic!("invalid envelope {s}: {e}"));
            assert!(v.get("status").is_some());
        }
        let v = Value::parse(&ok_response(Some(3), Some(true), r#"{"x":1}"#)).unwrap();
        assert_eq!(v.get("id").unwrap().as_i64(), Some(3));
        assert_eq!(v.get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("result").unwrap().get("x").unwrap().as_i64(), Some(1));
    }
}
