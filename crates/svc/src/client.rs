//! A small blocking client for `dls-serve`, used by the load generator,
//! the self-test, and the integration suite.

use minijson::Value;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One NDJSON connection to a server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect (with a generous IO timeout so a hung server fails tests
    /// instead of wedging them).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Send one request line without waiting for its response (pipelining).
    pub fn send(&mut self, request: &str) -> std::io::Result<()> {
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(())
    }

    /// Flush buffered requests to the socket.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }

    /// Read the next response line, parsed.
    pub fn recv(&mut self) -> std::io::Result<Value> {
        let mut line = String::new();
        loop {
            match self.reader.read_line(&mut line) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                Ok(_) => {
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        line.clear();
                        continue;
                    }
                    return Value::parse(trimmed).map_err(|e| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("bad response {trimmed:?}: {e}"),
                        )
                    });
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Round-trip one request (send, flush, receive).
    pub fn call(&mut self, request: &str) -> std::io::Result<Value> {
        self.send(request)?;
        self.flush()?;
        self.recv()
    }
}
