//! A small blocking client for `dls-serve`, used by the load generator,
//! the self-test, the router's shard connections, and the integration
//! suite.
//!
//! All IO is bounded: connects use [`TcpStream::connect_timeout`], and
//! [`Client::recv`] enforces the read timeout as a **total** deadline per
//! response — a server that accepts the connection and then never replies
//! (or stalls mid-line) yields `ErrorKind::TimedOut` instead of blocking
//! the caller forever. [`crate::resilient_client::ResilientClient`] builds
//! retries, backoff, and a circuit breaker on top of this.

use minijson::Value;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// IO bounds for one [`Client`] connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// TCP connect timeout (per resolved address).
    pub connect_timeout: Duration,
    /// Total time [`Client::recv`] waits for one complete response line.
    pub read_timeout: Duration,
    /// Socket write timeout (a dead peer fails sends instead of wedging).
    pub write_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(5),
            // Generous so a hung server fails tests instead of wedging
            // them; resilience-layer callers shrink this drastically.
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(5),
        }
    }
}

impl ClientConfig {
    /// A uniform small-timeout profile (router shard hops, health probes).
    pub fn fast(timeout: Duration) -> Self {
        Self {
            connect_timeout: timeout,
            read_timeout: timeout,
            write_timeout: timeout,
        }
    }
}

/// One NDJSON connection to a server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    read_timeout: Duration,
    peer: SocketAddr,
}

/// The slice of `read_timeout` each blocking read syscall may take before
/// the total-deadline check runs. Small enough that `recv` overshoots its
/// deadline by at most this much.
const READ_SLICE: Duration = Duration::from_millis(50);

impl Client {
    /// Connect with the default (generous) timeouts.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit connect/read/write bounds.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> std::io::Result<Self> {
        let mut last_err = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, config.connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(READ_SLICE.min(config.read_timeout)))?;
                    stream.set_write_timeout(Some(config.write_timeout))?;
                    let reader = BufReader::new(stream.try_clone()?);
                    return Ok(Self {
                        reader,
                        writer: BufWriter::new(stream),
                        read_timeout: config.read_timeout,
                        peer: resolved,
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address to connect to")
        }))
    }

    /// The address this client connected to.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Send one request line without waiting for its response (pipelining).
    pub fn send(&mut self, request: &str) -> std::io::Result<()> {
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(())
    }

    /// Flush buffered requests to the socket.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }

    /// Read the next response line, raw (trimmed, not parsed). Enforces
    /// the configured read timeout as a total deadline: a silent or
    /// stalling server yields `ErrorKind::TimedOut`.
    pub fn recv_raw(&mut self) -> std::io::Result<String> {
        let deadline = Instant::now() + self.read_timeout;
        let mut line = String::new();
        loop {
            match self.reader.read_line(&mut line) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                Ok(_) => {
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        line.clear();
                        continue;
                    }
                    return Ok(trimmed.to_string());
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // Partial bytes (if any) stay buffered in `line`; keep
                    // reading until the *total* deadline passes.
                    if Instant::now() >= deadline {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            format!(
                                "no complete response within {:?} (got {} partial bytes)",
                                self.read_timeout,
                                line.len()
                            ),
                        ));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Read the next response line, parsed.
    pub fn recv(&mut self) -> std::io::Result<Value> {
        let raw = self.recv_raw()?;
        Value::parse(&raw).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response {raw:?}: {e}"),
            )
        })
    }

    /// Round-trip one request, returning the raw response line. The bytes
    /// are exactly what the server sent — the router relays them unchanged
    /// so cache-identity and `retry_after_ms` survive the extra hop
    /// byte-for-byte.
    pub fn call_raw(&mut self, request: &str) -> std::io::Result<String> {
        self.send(request)?;
        self.flush()?;
        self.recv_raw()
    }

    /// Round-trip one request (send, flush, receive, parse).
    pub fn call(&mut self, request: &str) -> std::io::Result<Value> {
        self.send(request)?;
        self.flush()?;
        self.recv()
    }
}
