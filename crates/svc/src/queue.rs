//! A bounded MPMC job queue with non-blocking admission.
//!
//! Producers (connection threads) never block: [`BoundedQueue::try_push`]
//! fails immediately when the queue is at capacity or closed, which is
//! what lets the server answer "rejected, retry later" instead of letting
//! a traffic spike grow an unbounded backlog. Consumers (workers) block in
//! [`BoundedQueue::pop`] until a job arrives or the queue is closed *and*
//! drained — closing stops admission but lets in-flight jobs finish, which
//! is exactly the graceful-drain contract.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`BoundedQueue::try_push`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity (backpressure — retry later).
    Full,
    /// The queue is closed (server draining — do not retry here).
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Fixed-capacity multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    ready: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` pending jobs.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            capacity,
            ready: Condvar::new(),
        }
    }

    /// Admit a job, or refuse without blocking.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut s = self.state.lock().unwrap();
        if s.closed {
            return Err((item, PushError::Closed));
        }
        if s.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        s.items.push_back(item);
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Take the next job, blocking while the queue is open and empty.
    /// Returns `None` once the queue is closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).unwrap();
        }
    }

    /// Stop admission. Pending jobs remain poppable; blocked consumers are
    /// woken (and exit once the backlog drains).
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Jobs currently pending.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// True when no job is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Capacity the queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn rejects_when_full_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err((3, PushError::Full)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_backlog_then_releases_consumers() {
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(10).unwrap();
        q.try_push(11).unwrap();
        q.close();
        assert_eq!(q.try_push(12), Err((12, PushError::Closed)));
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Arc::new(BoundedQueue::new(16));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut accepted = 0u32;
                    for i in 0..100u32 {
                        if q.try_push(p * 1000 + i).is_ok() {
                            accepted += 1;
                        }
                        if i % 7 == 0 {
                            std::thread::yield_now();
                        }
                    }
                    accepted
                })
            })
            .collect();
        let accepted: u32 = producers.into_iter().map(|h| h.join().unwrap()).sum();
        q.close();
        let consumed: u32 = consumers
            .into_iter()
            .map(|h| h.join().unwrap().len() as u32)
            .sum();
        assert_eq!(accepted, consumed, "every admitted job is consumed");
    }
}
