//! Service counters and per-endpoint latency histograms.
//!
//! The hot path must not serialize workers on one histogram lock, so the
//! registry is sharded per worker: worker `i` records only into slot `i`
//! (its mutex is uncontended except when a stats reader takes a snapshot),
//! and the stats endpoint aggregates slots with [`obs::Histogram::merge`].
//! Shards are capped at [`LATENCY_SAMPLE_CAP`] samples so a long-running
//! server's stats memory is bounded (percentiles are over a recent
//! window; counts stay exact). Global counters are single atomics —
//! uncontended adds are cheap and the drain invariant
//! (`received == completed + rejected`) needs them exact.

use obs::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The work endpoints the service meters individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `op = "solve"` — cached DLS-LBL solve + payments.
    Solve,
    /// `op = "ft_run"` — fault-injected protocol execution.
    FtRun,
    /// `op = "submit_job"` — multi-job queue completion latency (submit
    /// to response, including queue wait and batch composition).
    Job,
}

impl Endpoint {
    /// All metered endpoints, index-aligned with the histogram slots.
    pub const ALL: [Endpoint; 3] = [Endpoint::Solve, Endpoint::FtRun, Endpoint::Job];

    /// Wire / report name.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Solve => "solve",
            Endpoint::FtRun => "ft_run",
            Endpoint::Job => "job",
        }
    }

    fn slot(self) -> usize {
        match self {
            Endpoint::Solve => 0,
            Endpoint::FtRun => 1,
            Endpoint::Job => 2,
        }
    }
}

/// Max latency samples stored per worker per endpoint. Bounds stats
/// memory on a long-running server (the shards otherwise grow 8 bytes
/// per request forever) and bounds the work a stats read does while
/// holding a shard lock; percentiles are over a recent window of this
/// size, while request *counts* stay exact via
/// [`obs::Histogram::total_count`].
pub const LATENCY_SAMPLE_CAP: usize = 4096;

struct WorkerShard {
    latency_us: [Histogram; 3],
}

impl WorkerShard {
    fn new() -> Self {
        Self {
            latency_us: [
                Histogram::with_cap(LATENCY_SAMPLE_CAP),
                Histogram::with_cap(LATENCY_SAMPLE_CAP),
                Histogram::with_cap(LATENCY_SAMPLE_CAP),
            ],
        }
    }
}

/// Final counter values reported after a drain; the conservation invariant
/// is checked by [`StatsSnapshot::conserved`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests successfully read and framed off a socket.
    pub received: u64,
    /// Requests that got a terminal response (`ok`, `error` or `timeout`).
    pub completed: u64,
    /// Requests refused with backpressure (queue full or draining).
    pub rejected: u64,
    /// Subset of `completed` that hit the per-request deadline in queue.
    pub timeouts: u64,
    /// Subset of `completed` answered with `status = "error"`.
    pub errors: u64,
}

impl StatsSnapshot {
    /// The graceful-drain ledger: every received request was answered
    /// exactly once, either completed or rejected with backpressure.
    pub fn conserved(&self) -> bool {
        self.received == self.completed + self.rejected
    }

    /// Accumulate another snapshot (fleet-wide totals: the ledger is
    /// additive across shards, so a sum of conserved snapshots is
    /// conserved).
    pub fn merge(&mut self, other: &StatsSnapshot) {
        self.received += other.received;
        self.completed += other.completed;
        self.rejected += other.rejected;
        self.timeouts += other.timeouts;
        self.errors += other.errors;
    }
}

/// Shared metering state for one server.
pub struct StatsRegistry {
    workers: Vec<Mutex<WorkerShard>>,
    received: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    timeouts: AtomicU64,
    errors: AtomicU64,
    started: Instant,
}

impl StatsRegistry {
    /// A registry with one histogram shard per worker.
    pub fn new(workers: usize) -> Self {
        Self {
            workers: (0..workers.max(1))
                .map(|_| Mutex::new(WorkerShard::new()))
                .collect(),
            received: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Count a framed request.
    pub fn on_received(&self) {
        self.received.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a terminal response; `error` marks `status = "error"`.
    pub fn on_completed(&self, error: bool) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        if error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count a backpressure rejection.
    pub fn on_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a deadline miss (also a completion, recorded separately).
    pub fn on_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request's service latency from worker `worker`.
    pub fn record_latency(&self, worker: usize, endpoint: Endpoint, micros: f64) {
        self.workers[worker % self.workers.len()]
            .lock()
            .unwrap()
            .latency_us[endpoint.slot()]
        .record(micros);
    }

    /// Merge every worker's shard for `endpoint` into one histogram.
    /// Bounded: each shard stores ≤ [`LATENCY_SAMPLE_CAP`] samples, so
    /// the copy done under each shard lock (and the merged result) is at
    /// most `workers × cap` samples; the merged
    /// [`total_count`](obs::Histogram::total_count) is the exact all-time
    /// request count for the endpoint.
    pub fn merged_latency(&self, endpoint: Endpoint) -> Histogram {
        let mut merged = Histogram::new();
        for shard in &self.workers {
            merged.merge(&shard.lock().unwrap().latency_us[endpoint.slot()]);
        }
        merged
    }

    /// Current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            received: self.received.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }

    /// Seconds since the registry (server) started.
    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Milliseconds since the registry (server) started. The `health`,
    /// `stats` and `metrics` bodies report this alongside the coarser
    /// `uptime_s` so restart gaps shorter than a second stay visible.
    pub fn uptime_millis(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_tracks_the_ledger() {
        let r = StatsRegistry::new(2);
        for _ in 0..5 {
            r.on_received();
        }
        r.on_completed(false);
        r.on_completed(true);
        r.on_timeout();
        r.on_completed(false); // the timeout's completion
        r.on_rejected();
        let s = r.snapshot();
        assert_eq!(s.received, 5);
        assert_eq!(s.completed, 3);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.errors, 1);
        assert!(!s.conserved());
        r.on_completed(false);
        assert!(r.snapshot().conserved());
    }

    #[test]
    fn latency_shards_stay_bounded_under_sustained_load() {
        let r = StatsRegistry::new(2);
        let n = 3 * LATENCY_SAMPLE_CAP;
        for i in 0..n {
            r.record_latency(i % 2, Endpoint::Solve, i as f64);
        }
        let mut merged = r.merged_latency(Endpoint::Solve);
        assert!(
            merged.len() <= 2 * LATENCY_SAMPLE_CAP,
            "stored samples must be capped per shard"
        );
        assert_eq!(merged.total_count(), n as u64, "counts stay exact");
        assert!(merged.percentile(50.0).is_finite());
    }

    #[test]
    fn per_worker_shards_merge_for_reading() {
        let r = StatsRegistry::new(3);
        r.record_latency(0, Endpoint::Solve, 10.0);
        r.record_latency(1, Endpoint::Solve, 30.0);
        r.record_latency(2, Endpoint::Solve, 20.0);
        r.record_latency(1, Endpoint::FtRun, 99.0);
        let mut solve = r.merged_latency(Endpoint::Solve);
        assert_eq!(solve.len(), 3);
        assert_eq!(solve.percentile(100.0), 30.0);
        let ft = r.merged_latency(Endpoint::FtRun);
        assert_eq!(ft.len(), 1);
    }
}
