//! Fleet telemetry plumbing: cross-hop trace-id injection and the
//! Prometheus-style text exposition behind the `metrics` op.
//!
//! ## Trace propagation rules (DESIGN.md §12)
//!
//! * The trace id lives in the **request** envelope only (`"trace": N`,
//!   a positive integer). Responses never carry it, so the router's
//!   relay-bytes-verbatim invariant — a routed response is byte-identical
//!   to a direct one — is untouched by tracing.
//! * Clients may set it; the router injects a fresh
//!   [`obs::next_trace_id`] into parseable work requests that arrive
//!   without one, and only while a sink is installed
//!   ([`obs::enabled`]), so the disabled path forwards the exact
//!   original bytes.
//! * Injection is a **string splice**, not a re-serialization: the line's
//!   closing `}` is replaced with `,"trace":N}`. Every other byte of the
//!   client's request survives verbatim, so the shard's parse sees the
//!   same fields the router's did.

use obs::Histogram;

/// Splice `"trace": trace` into a JSON-object request line that does not
/// already carry one. Returns `None` when the line is not a JSON object
/// on its face (unparseable lines are relayed untouched — the shard will
/// produce the authoritative parse error).
pub fn inject_trace(line: &str, trace: u64) -> Option<String> {
    let trimmed = line.trim_end();
    let body = trimmed.strip_suffix('}')?;
    if !trimmed.starts_with('{') {
        return None;
    }
    // `{}` needs no comma; `{...fields}` does.
    let sep = if body.trim_start().len() > 1 { "," } else { "" };
    Some(format!("{body}{sep}\"trace\":{trace}}}"))
}

/// Extract a trace id from a request line without a full parse pass.
/// Used on hops (resilient client) that otherwise treat the line as
/// opaque bytes; only called when instrumentation is enabled.
pub fn extract_trace(line: &str) -> Option<u64> {
    let v = minijson::Value::parse(line.trim_end()).ok()?;
    v.get("trace")
        .and_then(minijson::Value::as_u64)
        .filter(|&t| t > 0)
}

/// Builder for a Prometheus-style text exposition. Zero-dependency and
/// deliberately minimal: `# TYPE` comments, counters/gauges, and summary
/// quantiles derived from [`obs::Histogram`]s.
#[derive(Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty exposition.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, kind: &str) {
        self.out.push_str("# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                self.out.push_str(v);
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        if value.fract() == 0.0 && value.abs() < 9e15 {
            self.out.push_str(&format!("{}", value as i64));
        } else {
            self.out.push_str(&format!("{value}"));
        }
        self.out.push('\n');
    }

    /// A monotonically increasing counter.
    pub fn counter(&mut self, name: &str, value: f64) -> &mut Self {
        self.header(name, "counter");
        self.sample(name, &[], value);
        self
    }

    /// A labeled counter sample under an already-emitted family. Emits
    /// the `# TYPE` header only when `first` is set so families with
    /// many label sets stay well-formed.
    pub fn labeled_counter(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        value: f64,
        first: bool,
    ) -> &mut Self {
        if first {
            self.header(name, "counter");
        }
        self.sample(name, labels, value);
        self
    }

    /// A point-in-time gauge.
    pub fn gauge(&mut self, name: &str, value: f64) -> &mut Self {
        self.header(name, "gauge");
        self.sample(name, &[], value);
        self
    }

    /// A latency summary: p50/p90/p99 quantiles plus `_count` and `_sum`,
    /// all labeled with `labels`. Quantiles come from the histogram's
    /// stored window; `_count` is its exact all-time total.
    pub fn summary(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        hist: &mut Histogram,
        first: bool,
    ) -> &mut Self {
        if first {
            self.header(name, "summary");
        }
        for (q, p) in [("0.5", 50.0), ("0.9", 90.0), ("0.99", 99.0)] {
            let mut qlabels: Vec<(&str, &str)> = labels.to_vec();
            qlabels.push(("quantile", q));
            let v = hist.percentile(p);
            self.sample(name, &qlabels, if v.is_finite() { v } else { 0.0 });
        }
        self.sample(&format!("{name}_count"), labels, hist.total_count() as f64);
        self.sample(&format!("{name}_sum"), labels, hist.sum());
        self
    }

    /// The rendered exposition.
    pub fn render(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inject_splices_without_touching_other_bytes() {
        let line = r#"{"op":"solve","id":7,"root_rate":1.0,"links":[0.2],"bids":[2.0]}"#;
        let out = inject_trace(line, 99).unwrap();
        assert_eq!(
            out,
            r#"{"op":"solve","id":7,"root_rate":1.0,"links":[0.2],"bids":[2.0],"trace":99}"#
        );
        // The spliced line still parses, and parses to the same request
        // plus the trace.
        let before = crate::handlers::parse_request(line, 1e-9).unwrap();
        let after = crate::handlers::parse_request(&out, 1e-9).unwrap();
        assert_eq!(after.trace, Some(99));
        assert_eq!(before.kind, after.kind);
        assert_eq!(before.id, after.id);
    }

    #[test]
    fn inject_handles_empty_object_and_rejects_non_objects() {
        assert_eq!(inject_trace("{}", 5).unwrap(), r#"{"trace":5}"#);
        assert_eq!(inject_trace("{}\n", 5).unwrap(), r#"{"trace":5}"#);
        assert!(inject_trace("not json", 5).is_none());
        assert!(inject_trace("[1,2]", 5).is_none());
        assert!(inject_trace(r#"{"op":"health""#, 5).is_none());
    }

    #[test]
    fn extract_roundtrips_inject() {
        let out = inject_trace(r#"{"op":"health"}"#, 1234).unwrap();
        assert_eq!(extract_trace(&out), Some(1234));
        assert_eq!(extract_trace(r#"{"op":"health"}"#), None);
        assert_eq!(extract_trace("garbage"), None);
        assert_eq!(extract_trace(r#"{"trace":0}"#), None);
    }

    #[test]
    fn prom_text_renders_counters_gauges_and_summaries() {
        let mut hist = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            hist.record(v);
        }
        let mut p = PromText::new();
        p.counter("dls_received_total", 42.0);
        p.gauge("dls_uptime_ms", 1500.0);
        p.summary("dls_latency_us", &[("endpoint", "solve")], &mut hist, true);
        let text = p.render();
        assert!(text.contains("# TYPE dls_received_total counter"));
        assert!(text.contains("dls_received_total 42"));
        assert!(text.contains("dls_uptime_ms 1500"));
        assert!(text.contains("dls_latency_us{endpoint=\"solve\",quantile=\"0.5\"}"));
        assert!(text.contains("dls_latency_us_count{endpoint=\"solve\"} 4"));
        assert!(text.contains("dls_latency_us_sum{endpoint=\"solve\"} 10"));
        // Every line is `name[{labels}] value` or a # TYPE comment.
        for line in text.lines() {
            assert!(
                line.starts_with("# TYPE ") || line.rsplit_once(' ').is_some(),
                "malformed exposition line: {line}"
            );
        }
    }
}
