//! A sharded LRU cache from [`ChainKey`](crate::quant::ChainKey) to the
//! serialized solve report.
//!
//! Shards are selected by key hash, so concurrent workers contend only
//! when they race on the same shard (1-in-`shards` for distinct chains).
//! Each shard is a small `HashMap` with a generation stamp per entry;
//! eviction removes the least-recently-used entry with a linear scan —
//! evictions happen only on misses into a full shard, where the scan cost
//! is dwarfed by the solve the miss is about to perform.

use crate::quant::ChainKey;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct Shard {
    entries: HashMap<ChainKey, (Arc<String>, u64)>,
    clock: u64,
}

impl Shard {
    fn touch(&mut self, key: &ChainKey) -> Option<Arc<String>> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(key).map(|(body, stamp)| {
            *stamp = clock;
            Arc::clone(body)
        })
    }

    fn insert(&mut self, key: ChainKey, body: Arc<String>, capacity: usize) {
        self.clock += 1;
        if self.entries.len() >= capacity && !self.entries.contains_key(&key) {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(key, (body, self.clock));
    }
}

/// Sharded LRU solver cache. Values are the serialized report bodies, so a
/// hit returns the exact bytes a cold solve produced.
pub struct SolverCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SolverCache {
    /// A cache with `shards` shards of `capacity_per_shard` entries each.
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        assert!(shards > 0 && capacity_per_shard > 0);
        Self {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        clock: 0,
                    })
                })
                .collect(),
            capacity_per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &ChainKey) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look up `key`, computing and inserting the body on a miss. Returns
    /// the body and whether it was a hit. `solve` runs outside the shard
    /// lock; when two workers race on the same cold key both solve and the
    /// later insert wins — harmless, since both bodies are identical by
    /// canonicalization.
    pub fn get_or_insert(
        &self,
        key: &ChainKey,
        solve: impl FnOnce() -> String,
    ) -> (Arc<String>, bool) {
        if let Some(body) = self.shard_of(key).lock().unwrap().touch(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (body, true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let body = Arc::new(solve());
        self.shard_of(key).lock().unwrap().insert(
            key.clone(),
            Arc::clone(&body),
            self.capacity_per_shard,
        );
        (body, false)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().entries.len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(ticks: Vec<i64>) -> ChainKey {
        ChainKey {
            m: ticks.len() / 2,
            ticks,
        }
    }

    #[test]
    fn hit_returns_the_inserted_bytes() {
        let cache = SolverCache::new(4, 8);
        let k = key(vec![1, 2, 3]);
        let (cold, hit) = cache.get_or_insert(&k, || "body-1".to_string());
        assert!(!hit);
        let (warm, hit) = cache.get_or_insert(&k, || unreachable!("must not re-solve"));
        assert!(hit);
        assert_eq!(*cold, *warm);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used_within_a_shard() {
        // Single shard of capacity 2 makes eviction deterministic.
        let cache = SolverCache::new(1, 2);
        let (a, b, c) = (key(vec![1]), key(vec![2]), key(vec![3]));
        cache.get_or_insert(&a, || "a".into());
        cache.get_or_insert(&b, || "b".into());
        cache.get_or_insert(&a, || unreachable!()); // a is now most recent
        cache.get_or_insert(&c, || "c".into()); // evicts b
        assert_eq!(cache.len(), 2);
        let (_, hit_a) = cache.get_or_insert(&a, || "a2".into());
        assert!(hit_a, "a survived the eviction");
        let (_, hit_b) = cache.get_or_insert(&b, || "b2".into());
        assert!(!hit_b, "b was evicted");
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = SolverCache::new(8, 4);
        for i in 0..64i64 {
            let (body, hit) = cache.get_or_insert(&key(vec![i, i + 1]), || format!("v{i}"));
            assert!(!hit);
            assert_eq!(*body, format!("v{i}"));
        }
    }
}
