//! A sharded LRU cache from [`ChainKey`](crate::quant::ChainKey) to the
//! serialized solve report.
//!
//! Shards are selected by key hash, so concurrent workers contend only
//! when they race on the same shard (1-in-`shards` for distinct chains).
//! Each shard is a small `HashMap` with a generation stamp per entry;
//! eviction removes the least-recently-used entry with a linear scan —
//! evictions happen only on misses into a full shard, where the scan cost
//! is dwarfed by the solve the miss is about to perform.
//!
//! ### Staleness controls
//! Two mechanisms bound how long a cached body may be served:
//!
//! * **TTL** ([`SolverCache::with_ttl`]): every entry carries its insert
//!   instant; a lookup past the TTL treats the entry as a miss, removes
//!   it, and re-solves. Counted in [`SolverCache::expired`].
//! * **Quantum epoch** ([`SolverCache::invalidate_on_quantum_change`]):
//!   cache keys are quantized ticks, so two *different* quanta can map
//!   distinct chains onto the same tick vector. When the server's quantum
//!   is reconfigured the whole cache is dropped in one sweep — a key from
//!   the old epoch must never answer a request from the new one.

use crate::quant::ChainKey;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Entry {
    body: Arc<String>,
    stamp: u64,
    inserted: Instant,
}

struct Shard {
    entries: HashMap<ChainKey, Entry>,
    clock: u64,
}

impl Shard {
    fn touch(&mut self, key: &ChainKey, ttl: Option<Duration>) -> TouchResult {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(key) {
            None => TouchResult::Miss,
            Some(entry) => {
                if let Some(ttl) = ttl {
                    if entry.inserted.elapsed() > ttl {
                        self.entries.remove(key);
                        return TouchResult::Expired;
                    }
                }
                entry.stamp = clock;
                TouchResult::Hit(Arc::clone(&entry.body))
            }
        }
    }

    fn insert(&mut self, key: ChainKey, body: Arc<String>, capacity: usize) {
        self.clock += 1;
        if self.entries.len() >= capacity && !self.entries.contains_key(&key) {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(
            key,
            Entry {
                body,
                stamp: self.clock,
                inserted: Instant::now(),
            },
        );
    }
}

enum TouchResult {
    Hit(Arc<String>),
    Miss,
    Expired,
}

/// Sharded LRU solver cache. Values are the serialized report bodies, so a
/// hit returns the exact bytes a cold solve produced.
pub struct SolverCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    ttl: Option<Duration>,
    /// The quantum the resident entries were keyed under (f64 bits;
    /// `u64::MAX` = not yet pinned).
    epoch_quantum_bits: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    expired: AtomicU64,
    invalidations: AtomicU64,
}

const EPOCH_UNSET: u64 = u64::MAX;

impl SolverCache {
    /// A cache with `shards` shards of `capacity_per_shard` entries each
    /// and no TTL (entries live until evicted or invalidated).
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        Self::with_ttl(shards, capacity_per_shard, None)
    }

    /// A cache whose entries additionally expire `ttl` after insertion.
    pub fn with_ttl(shards: usize, capacity_per_shard: usize, ttl: Option<Duration>) -> Self {
        assert!(shards > 0 && capacity_per_shard > 0);
        Self {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        clock: 0,
                    })
                })
                .collect(),
            capacity_per_shard,
            ttl,
            epoch_quantum_bits: AtomicU64::new(EPOCH_UNSET),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &ChainKey) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look up `key`, computing and inserting the body on a miss. Returns
    /// the body and whether it was a hit. `solve` runs outside the shard
    /// lock; when two workers race on the same cold key both solve and the
    /// later insert wins — harmless, since both bodies are identical by
    /// canonicalization. An entry past the TTL counts as a miss (and as
    /// [`expired`](SolverCache::expired)).
    pub fn get_or_insert(
        &self,
        key: &ChainKey,
        solve: impl FnOnce() -> String,
    ) -> (Arc<String>, bool) {
        match self.shard_of(key).lock().unwrap().touch(key, self.ttl) {
            TouchResult::Hit(body) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (body, true);
            }
            TouchResult::Expired => {
                self.expired.fetch_add(1, Ordering::Relaxed);
            }
            TouchResult::Miss => {}
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let body = Arc::new(solve());
        self.shard_of(key).lock().unwrap().insert(
            key.clone(),
            Arc::clone(&body),
            self.capacity_per_shard,
        );
        (body, false)
    }

    /// Pin the cache to `quantum`, dropping **every** entry if it differs
    /// from the quantum the resident entries were keyed under. Returns
    /// `true` when the cache was cleared. Keys are quantized ticks, so a
    /// quantum change silently re-interprets every key — full invalidation
    /// is the only correct response (property-tested in
    /// `tests/cache_props.rs`).
    pub fn invalidate_on_quantum_change(&self, quantum: f64) -> bool {
        let bits = quantum.to_bits();
        let prev = self.epoch_quantum_bits.swap(bits, Ordering::SeqCst);
        if prev == bits {
            return false;
        }
        let first_pin = prev == EPOCH_UNSET;
        if first_pin && self.is_empty() {
            return false;
        }
        self.clear();
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Drop every cached entry (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap().entries.clear();
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lookups that found an entry past the TTL (each also counted as a
    /// miss).
    pub fn expired(&self) -> u64 {
        self.expired.load(Ordering::Relaxed)
    }

    /// Full-cache invalidations forced by a quantum change.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().entries.len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(ticks: Vec<i64>) -> ChainKey {
        ChainKey {
            m: ticks.len() / 2,
            ticks,
        }
    }

    #[test]
    fn hit_returns_the_inserted_bytes() {
        let cache = SolverCache::new(4, 8);
        let k = key(vec![1, 2, 3]);
        let (cold, hit) = cache.get_or_insert(&k, || "body-1".to_string());
        assert!(!hit);
        let (warm, hit) = cache.get_or_insert(&k, || unreachable!("must not re-solve"));
        assert!(hit);
        assert_eq!(*cold, *warm);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used_within_a_shard() {
        // Single shard of capacity 2 makes eviction deterministic.
        let cache = SolverCache::new(1, 2);
        let (a, b, c) = (key(vec![1]), key(vec![2]), key(vec![3]));
        cache.get_or_insert(&a, || "a".into());
        cache.get_or_insert(&b, || "b".into());
        cache.get_or_insert(&a, || unreachable!()); // a is now most recent
        cache.get_or_insert(&c, || "c".into()); // evicts b
        assert_eq!(cache.len(), 2);
        let (_, hit_a) = cache.get_or_insert(&a, || "a2".into());
        assert!(hit_a, "a survived the eviction");
        let (_, hit_b) = cache.get_or_insert(&b, || "b2".into());
        assert!(!hit_b, "b was evicted");
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = SolverCache::new(8, 4);
        for i in 0..64i64 {
            let (body, hit) = cache.get_or_insert(&key(vec![i, i + 1]), || format!("v{i}"));
            assert!(!hit);
            assert_eq!(*body, format!("v{i}"));
        }
    }

    #[test]
    fn ttl_expires_entries_into_misses() {
        let cache = SolverCache::with_ttl(2, 8, Some(Duration::from_millis(25)));
        let k = key(vec![7, 8]);
        cache.get_or_insert(&k, || "v1".into());
        let (_, hit) = cache.get_or_insert(&k, || unreachable!("fresh entry must hit"));
        assert!(hit);
        std::thread::sleep(Duration::from_millis(40));
        let (body, hit) = cache.get_or_insert(&k, || "v2".into());
        assert!(!hit, "expired entry must be a miss");
        assert_eq!(*body, "v2");
        assert_eq!(cache.expired(), 1);
        // Re-inserted entry is fresh again.
        let (_, hit) = cache.get_or_insert(&k, || unreachable!());
        assert!(hit);
    }

    #[test]
    fn quantum_change_drops_every_entry() {
        let cache = SolverCache::new(4, 8);
        assert!(
            !cache.invalidate_on_quantum_change(1e-9),
            "pinning an empty cache is not an invalidation"
        );
        for i in 0..10i64 {
            cache.get_or_insert(&key(vec![i]), || format!("v{i}"));
        }
        assert!(!cache.invalidate_on_quantum_change(1e-9), "same quantum");
        assert_eq!(cache.len(), 10);
        assert!(cache.invalidate_on_quantum_change(1e-6), "new quantum");
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.invalidations(), 1);
        let (_, hit) = cache.get_or_insert(&key(vec![3]), || "fresh".into());
        assert!(!hit, "old-epoch entries must not survive");
    }
}
