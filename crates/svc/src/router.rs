//! The failover router: a front tier that speaks the same NDJSON protocol
//! as a single server and spreads work across a fleet of shard servers.
//!
//! ### Routing
//! Each work request is mapped to a **routing key**: for `solve`, the
//! canonical quantized [`ChainKey`](crate::quant::ChainKey) (the solver
//! cache identity); for everything else, a hash of the raw request line.
//! The key is placed with **rendezvous (highest-random-weight) hashing**
//! over the shard slots: every key has a stable preference order over all
//! slots, so when one shard dies only its keys move (to their
//! second-choice shard) and the rest of the fleet keeps its cache warm.
//!
//! ### Correct-by-construction failover
//! The solver cache is keyed by the canonical chain, and a cached body is
//! the exact bytes of the cold solve ([`crate::cache`]). A failed-over
//! key therefore re-solves on its new shard to a **bit-identical**
//! response (modulo the `cached` flag) — failover can serve stale or
//! wrong data only if the solve itself were nondeterministic, which the
//! E25 harness (`exp_serve_chaos`) disproves under every chaos plan.
//!
//! ### Relaying
//! Shard responses are relayed as **raw bytes** ([`Client::call_raw`]):
//! the router never reparses or reserializes a shard response, so cache
//! bit-identity and `retry_after_ms` hints survive the extra hop
//! unchanged. Backpressure rejections are relayed, **not** retried — the
//! retry decision belongs to the client, and never re-sending means
//! router forwarding attempts equal the sum of shard `received` counters
//! exactly (asserted in `tests/resilience_e2e.rs`).
//!
//! ### Failure handling
//! A connect/IO failure marks the slot down (after
//! [`RouterConfig::failure_threshold`] consecutive failures) and the
//! request fails over to the next slot in its preference order; a
//! `draining` rejection does the same (the shard is going away). When no
//! slot can take the request the client gets a `"rejected"` /
//! `"unavailable"` response with a retry hint. An optional prober thread
//! re-checks downed slots so they rejoin once the supervisor restarts
//! them (the [`crate::supervisor`] also flips slots back up directly).

use crate::client::{Client, ClientConfig};
use crate::handlers::{self, RequestKind, WorkRequest};
use crate::telemetry::{self, PromText};
use minijson::Value;
use obs::Histogram;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One shard slot: where it lives and how it is doing.
struct Slot {
    /// Current address (`None` while the shard is down/being restarted).
    addr: Mutex<Option<SocketAddr>>,
    /// Routable right now?
    healthy: AtomicBool,
    /// Bumped on every address (re)assignment; cached connections from an
    /// older generation are discarded.
    generation: AtomicU64,
    /// Times the supervisor restarted this slot.
    restarts: AtomicU64,
    /// Requests this slot answered through the router.
    forwarded: AtomicU64,
    /// Forwarding failures at this slot that pushed a request onward
    /// (IO error, draining response, or connection-limit response).
    failovers: AtomicU64,
    /// Backpressure rejections this slot answered that the router
    /// relayed unchanged.
    relayed_rejections: AtomicU64,
    /// Consecutive forwarding/probe failures.
    consecutive_failures: AtomicU64,
}

/// Live view of slot `i`, as reported by [`ShardDirectory::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotSnapshot {
    /// Slot index.
    pub slot: usize,
    /// Current address, if assigned.
    pub addr: Option<SocketAddr>,
    /// Routable right now?
    pub healthy: bool,
    /// Address generation (restart epoch).
    pub generation: u64,
    /// Supervisor restarts so far.
    pub restarts: u64,
    /// Requests answered through the router.
    pub forwarded: u64,
    /// Forwarding failures here that pushed a request to another slot
    /// (or to `unavailable` when it was the last candidate).
    pub failovers: u64,
    /// Backpressure rejections answered here and relayed unchanged.
    pub relayed_rejections: u64,
}

/// The shared fleet map: the supervisor writes addresses into it, the
/// router routes over it, the prober flips health bits.
pub struct ShardDirectory {
    slots: Vec<Slot>,
}

impl ShardDirectory {
    /// A directory of `slots` empty slots (no addresses yet).
    pub fn new(slots: usize) -> Arc<Self> {
        assert!(slots > 0, "a fleet needs at least one slot");
        Arc::new(Self {
            slots: (0..slots)
                .map(|_| Slot {
                    addr: Mutex::new(None),
                    healthy: AtomicBool::new(false),
                    generation: AtomicU64::new(0),
                    restarts: AtomicU64::new(0),
                    forwarded: AtomicU64::new(0),
                    failovers: AtomicU64::new(0),
                    relayed_rejections: AtomicU64::new(0),
                    consecutive_failures: AtomicU64::new(0),
                })
                .collect(),
        })
    }

    /// Number of slots (fixed at construction).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Directories are never empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Assign `addr` to `slot` and mark it healthy (a fresh/restarted
    /// shard). Bumps the generation so stale cached connections die.
    pub fn set_addr(&self, slot: usize, addr: SocketAddr) {
        let s = &self.slots[slot];
        *s.addr.lock().unwrap() = Some(addr);
        s.generation.fetch_add(1, Ordering::SeqCst);
        s.consecutive_failures.store(0, Ordering::SeqCst);
        s.healthy.store(true, Ordering::SeqCst);
    }

    /// Record a restart of `slot` (called by the supervisor).
    pub fn note_restart(&self, slot: usize) {
        self.slots[slot].restarts.fetch_add(1, Ordering::SeqCst);
    }

    /// Take `slot` out of rotation (shard died or was killed).
    pub fn mark_down(&self, slot: usize) {
        self.slots[slot].healthy.store(false, Ordering::SeqCst);
    }

    /// Put `slot` back in rotation (probe succeeded).
    pub fn mark_healthy(&self, slot: usize) {
        let s = &self.slots[slot];
        s.consecutive_failures.store(0, Ordering::SeqCst);
        s.healthy.store(true, Ordering::SeqCst);
    }

    /// Record a forwarding/probe failure; downs the slot at `threshold`
    /// consecutive failures.
    pub fn record_failure(&self, slot: usize, threshold: u64) {
        let s = &self.slots[slot];
        let n = s.consecutive_failures.fetch_add(1, Ordering::SeqCst) + 1;
        if n >= threshold {
            s.healthy.store(false, Ordering::SeqCst);
        }
    }

    /// Current address of `slot`.
    pub fn addr(&self, slot: usize) -> Option<SocketAddr> {
        *self.slots[slot].addr.lock().unwrap()
    }

    /// Address generation of `slot`.
    pub fn generation(&self, slot: usize) -> u64 {
        self.slots[slot].generation.load(Ordering::SeqCst)
    }

    /// Is `slot` routable?
    pub fn is_healthy(&self, slot: usize) -> bool {
        self.slots[slot].healthy.load(Ordering::SeqCst)
    }

    /// Slots currently marked healthy.
    pub fn live_slots(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.is_healthy(i)).collect()
    }

    /// Rendezvous preference order for `key_hash`: all slots, best first.
    /// Deterministic per key; independent of health (callers filter).
    pub fn rank(&self, key_hash: u64) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by_key(|&slot| std::cmp::Reverse(rendezvous_weight(key_hash, slot)));
        order
    }

    /// Snapshot every slot for stats reporting.
    pub fn snapshot(&self) -> Vec<SlotSnapshot> {
        (0..self.len())
            .map(|i| {
                let s = &self.slots[i];
                SlotSnapshot {
                    slot: i,
                    addr: *s.addr.lock().unwrap(),
                    healthy: s.healthy.load(Ordering::SeqCst),
                    generation: s.generation.load(Ordering::SeqCst),
                    restarts: s.restarts.load(Ordering::SeqCst),
                    forwarded: s.forwarded.load(Ordering::SeqCst),
                    failovers: s.failovers.load(Ordering::SeqCst),
                    relayed_rejections: s.relayed_rejections.load(Ordering::SeqCst),
                }
            })
            .collect()
    }
}

/// Highest-random-weight score of `slot` for `key_hash`.
fn rendezvous_weight(key_hash: u64, slot: usize) -> u64 {
    let mut h = DefaultHasher::new();
    key_hash.hash(&mut h);
    (slot as u64).hash(&mut h);
    h.finish()
}

/// Router tunables.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Connect/read/write timeout for each shard hop.
    pub shard_timeout: Duration,
    /// Probe interval for downed-slot recovery; `Duration::ZERO` disables
    /// the prober (then only the supervisor flips slots back up). Note
    /// probes count toward shard `received` totals.
    pub health_interval: Duration,
    /// Retry hint on router-level `unavailable` rejections.
    pub retry_after_ms: u64,
    /// Consecutive failures before a slot is marked down.
    pub failure_threshold: u64,
    /// Honor `shutdown`/`reconfigure` ops from non-loopback peers.
    pub allow_remote_shutdown: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            shard_timeout: Duration::from_secs(2),
            health_interval: Duration::from_millis(250),
            retry_after_ms: 50,
            failure_threshold: 1,
            allow_remote_shutdown: false,
        }
    }
}

#[derive(Default)]
struct RouterCounters {
    received: AtomicU64,
    forwarded_ok: AtomicU64,
    forward_attempts: AtomicU64,
    failovers: AtomicU64,
    relayed_rejections: AtomicU64,
    unavailable: AtomicU64,
    probes: AtomicU64,
}

/// Counter snapshot for the router tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Request lines read from clients.
    pub received: u64,
    /// Responses relayed from a shard (any status).
    pub forwarded_ok: u64,
    /// Request lines actually sent to a shard (each one increments that
    /// shard's `received`; equality is asserted in the e2e suite).
    pub forward_attempts: u64,
    /// Times a request moved past a failed/draining slot.
    pub failovers: u64,
    /// Backpressure rejections relayed unchanged (never retried here).
    pub relayed_rejections: u64,
    /// Router-level `unavailable` rejections (no live shard).
    pub unavailable: u64,
    /// Health probes sent by the prober thread.
    pub probes: u64,
}

struct RouterShared {
    directory: Arc<ShardDirectory>,
    config: RouterConfig,
    counters: RouterCounters,
    draining: AtomicBool,
    addr: SocketAddr,
    started: Instant,
}

impl RouterShared {
    fn stats(&self) -> RouterStats {
        let c = &self.counters;
        RouterStats {
            received: c.received.load(Ordering::Relaxed),
            forwarded_ok: c.forwarded_ok.load(Ordering::Relaxed),
            forward_attempts: c.forward_attempts.load(Ordering::Relaxed),
            failovers: c.failovers.load(Ordering::Relaxed),
            relayed_rejections: c.relayed_rejections.load(Ordering::Relaxed),
            unavailable: c.unavailable.load(Ordering::Relaxed),
            probes: c.probes.load(Ordering::Relaxed),
        }
    }

    fn begin_drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            obs::event!("router.drain.begin");
            let _ = TcpStream::connect(self.addr);
        }
    }

    fn health_body(&self) -> String {
        let state = if self.draining.load(Ordering::SeqCst) {
            "draining"
        } else {
            "serving"
        };
        Value::Object(vec![
            ("state".into(), Value::String(state.into())),
            ("role".into(), Value::String("router".into())),
            ("slots".into(), Value::Number(self.directory.len() as f64)),
            (
                "live_shards".into(),
                Value::Number(self.directory.live_slots().len() as f64),
            ),
        ])
        .to_json()
    }

    fn stats_body(&self) -> String {
        let s = self.stats();
        let shards = self
            .directory
            .snapshot()
            .into_iter()
            .map(|slot| {
                Value::Object(vec![
                    ("slot".into(), Value::Number(slot.slot as f64)),
                    (
                        "addr".into(),
                        match slot.addr {
                            Some(a) => Value::String(a.to_string()),
                            None => Value::Null,
                        },
                    ),
                    ("healthy".into(), Value::Bool(slot.healthy)),
                    ("generation".into(), Value::Number(slot.generation as f64)),
                    ("restarts".into(), Value::Number(slot.restarts as f64)),
                    ("forwarded".into(), Value::Number(slot.forwarded as f64)),
                    ("failovers".into(), Value::Number(slot.failovers as f64)),
                    (
                        "relayed_rejections".into(),
                        Value::Number(slot.relayed_rejections as f64),
                    ),
                ])
            })
            .collect();
        Value::Object(vec![
            ("role".into(), Value::String("router".into())),
            ("received".into(), Value::Number(s.received as f64)),
            ("forwarded_ok".into(), Value::Number(s.forwarded_ok as f64)),
            (
                "forward_attempts".into(),
                Value::Number(s.forward_attempts as f64),
            ),
            ("failovers".into(), Value::Number(s.failovers as f64)),
            (
                "relayed_rejections".into(),
                Value::Number(s.relayed_rejections as f64),
            ),
            ("unavailable".into(), Value::Number(s.unavailable as f64)),
            ("probes".into(), Value::Number(s.probes as f64)),
            ("shards".into(), Value::Array(shards)),
        ])
        .to_json()
    }

    /// The router's `metrics` body: its own counters, per-slot forwarding
    /// counters, and a fleet-wide aggregate built by fetching each
    /// addressed shard's `metrics` and merging counters + latency sample
    /// windows via [`Histogram::merge`] semantics (sample-set union).
    /// The fan-out uses fresh direct connections, so it never touches
    /// `forward_attempts` (but it does count toward shard `received`,
    /// like health probes).
    fn metrics_body(&self) -> String {
        let s = self.stats();
        let uptime_ms = self.started.elapsed().as_millis() as u64;
        let slots = self.directory.snapshot();
        let counters: Vec<(&str, u64)> = vec![
            ("received", s.received),
            ("forwarded_ok", s.forwarded_ok),
            ("forward_attempts", s.forward_attempts),
            ("failovers", s.failovers),
            ("relayed_rejections", s.relayed_rejections),
            ("unavailable", s.unavailable),
            ("probes", s.probes),
        ];
        let mut prom = PromText::new();
        prom.gauge("dls_router_uptime_ms", uptime_ms as f64);
        for (name, v) in &counters {
            prom.counter(&format!("dls_router_{name}_total"), *v as f64);
        }
        for (i, slot) in slots.iter().enumerate() {
            let idx = slot.slot.to_string();
            let labels: [(&str, &str); 1] = [("slot", &idx)];
            prom.labeled_counter(
                "dls_router_slot_forwarded_total",
                &labels,
                slot.forwarded as f64,
                i == 0,
            );
        }
        for (i, slot) in slots.iter().enumerate() {
            let idx = slot.slot.to_string();
            let labels: [(&str, &str); 1] = [("slot", &idx)];
            prom.labeled_counter(
                "dls_router_slot_failovers_total",
                &labels,
                slot.failovers as f64,
                i == 0,
            );
        }
        for (i, slot) in slots.iter().enumerate() {
            let idx = slot.slot.to_string();
            let labels: [(&str, &str); 1] = [("slot", &idx)];
            prom.labeled_counter(
                "dls_router_slot_relayed_rejections_total",
                &labels,
                slot.relayed_rejections as f64,
                i == 0,
            );
        }

        // Fleet aggregation: one fresh `metrics` call per addressed slot.
        let mut shards_reporting = 0usize;
        let mut fleet_counters: Vec<(String, f64)> = Vec::new();
        let mut fleet_latency: Vec<(&str, Histogram, f64)> = vec![
            ("solve", Histogram::new(), 0.0),
            ("ft_run", Histogram::new(), 0.0),
            ("job", Histogram::new(), 0.0),
        ];
        for slot in &slots {
            let Some(addr) = slot.addr else { continue };
            let resp = Client::connect_with(addr, ClientConfig::fast(self.config.shard_timeout))
                .and_then(|mut c| c.call_raw("{\"op\":\"metrics\"}"));
            let Ok(resp) = resp else { continue };
            let Ok(v) = Value::parse(&resp) else { continue };
            let Some(result) = v.get("result") else {
                continue;
            };
            shards_reporting += 1;
            if let Some(Value::Object(pairs)) = result.get("counters") {
                for (k, cv) in pairs {
                    let Some(x) = cv.as_f64() else { continue };
                    match fleet_counters.iter_mut().find(|(name, _)| name == k) {
                        Some((_, total)) => *total += x,
                        None => fleet_counters.push((k.clone(), x)),
                    }
                }
            }
            for (name, hist, count) in fleet_latency.iter_mut() {
                let Some(l) = result.get("latency_us").and_then(|l| l.get(name)) else {
                    continue;
                };
                *count += l.get("count").and_then(Value::as_f64).unwrap_or(0.0);
                if let Some(samples) = l.get("samples").and_then(Value::as_array) {
                    for sample in samples {
                        if let Some(x) = sample.as_f64() {
                            hist.record(x);
                        }
                    }
                }
            }
        }
        prom.gauge("dls_fleet_shards_reporting", shards_reporting as f64);
        for (name, total) in &fleet_counters {
            prom.counter(&format!("dls_fleet_{name}_total"), *total);
        }
        let mut latency_json = Vec::new();
        for (i, (name, hist, count)) in fleet_latency.iter_mut().enumerate() {
            prom.summary("dls_fleet_latency_us", &[("endpoint", *name)], hist, i == 0);
            let summary = hist.summary();
            let nan_safe = |x: f64| if x.is_finite() { x } else { 0.0 };
            latency_json.push((
                name.to_string(),
                Value::Object(vec![
                    // Exact all-time fleet count (summed shard counts);
                    // percentiles are over the merged recent windows.
                    ("count".into(), Value::Number(*count)),
                    ("p50_us".into(), Value::Number(nan_safe(summary.p50))),
                    ("p90_us".into(), Value::Number(nan_safe(summary.p90))),
                    ("p99_us".into(), Value::Number(nan_safe(summary.p99))),
                    ("max_us".into(), Value::Number(nan_safe(summary.max))),
                ]),
            ));
        }
        let slot_rows = slots
            .iter()
            .map(|slot| {
                Value::Object(vec![
                    ("slot".into(), Value::Number(slot.slot as f64)),
                    ("healthy".into(), Value::Bool(slot.healthy)),
                    ("restarts".into(), Value::Number(slot.restarts as f64)),
                    ("forwarded".into(), Value::Number(slot.forwarded as f64)),
                    ("failovers".into(), Value::Number(slot.failovers as f64)),
                    (
                        "relayed_rejections".into(),
                        Value::Number(slot.relayed_rejections as f64),
                    ),
                ])
            })
            .collect();
        Value::Object(vec![
            ("role".into(), Value::String("router".into())),
            ("uptime_ms".into(), Value::Number(uptime_ms as f64)),
            (
                "counters".into(),
                Value::Object(
                    counters
                        .iter()
                        .map(|(k, v)| (k.to_string(), Value::Number(*v as f64)))
                        .collect(),
                ),
            ),
            ("slots".into(), Value::Array(slot_rows)),
            (
                "fleet".into(),
                Value::Object(vec![
                    (
                        "shards_reporting".into(),
                        Value::Number(shards_reporting as f64),
                    ),
                    (
                        "counters".into(),
                        Value::Object(
                            fleet_counters
                                .iter()
                                .map(|(k, v)| (k.clone(), Value::Number(*v)))
                                .collect(),
                        ),
                    ),
                    ("latency_us".into(), Value::Object(latency_json)),
                ]),
            ),
            ("text".into(), Value::String(prom.render())),
        ])
        .to_json()
    }
}

/// One cached shard connection, valid for a single address generation.
struct CachedConn {
    generation: u64,
    client: Client,
}

/// Per-connection forwarding state: cached shard connections.
struct Forwarder {
    conns: HashMap<usize, CachedConn>,
}

impl Forwarder {
    fn new() -> Self {
        Self {
            conns: HashMap::new(),
        }
    }

    /// Forward `line` to the best live slot for `key_hash`, failing over
    /// through the rendezvous order. Returns the raw response to relay.
    ///
    /// `trace` tags each attempt's telemetry. The per-trace conservation
    /// ledger (`dls-trace --fleet`) is: every `router.forward_attempt`
    /// either produced a shard-side `svc.receive` (the shard framed the
    /// line) or a `router.attempt_failed` (IO error, or a
    /// connection-limit rejection sent by the shard's accept loop before
    /// it ever read the line) — so `receives == attempts - failed`,
    /// per trace id, even across kills.
    fn forward(
        &mut self,
        shared: &RouterShared,
        key_hash: u64,
        id: Option<i64>,
        line: &str,
        trace: Option<u64>,
    ) -> String {
        let order = shared.directory.rank(key_hash);
        // Healthy slots first (in preference order), then the rest as a
        // last resort — with the prober disabled, a recovered-but-not-yet
        // -remarked slot is still worth one try before giving up.
        let candidates = order
            .iter()
            .copied()
            .filter(|&s| shared.directory.is_healthy(s))
            .chain(
                order
                    .iter()
                    .copied()
                    .filter(|&s| !shared.directory.is_healthy(s)),
            );
        let mut first = true;
        for slot in candidates {
            if !first {
                shared.counters.failovers.fetch_add(1, Ordering::Relaxed);
                obs::count!("router.failover");
            }
            first = false;
            match self.try_slot(shared, slot, line, trace) {
                Some(resp) => {
                    if resp.contains("\"reason\":\"draining\"") {
                        // The shard acknowledged but is going away; it
                        // stays correct to fail this key over right now.
                        // (The shard framed the line, so the attempt has
                        // a matching receive — not a failed attempt.)
                        shared
                            .directory
                            .record_failure(slot, shared.config.failure_threshold);
                        shared.directory.slots[slot]
                            .failovers
                            .fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if resp.contains("\"reason\":\"connection-limit\"") {
                        // The shard is alive but full; our connection was
                        // closed after this line — which the shard never
                        // read, so the attempt counts as failed in the
                        // conservation ledger.
                        self.conns.remove(&slot);
                        shared.directory.slots[slot]
                            .failovers
                            .fetch_add(1, Ordering::Relaxed);
                        match trace {
                            Some(t) => {
                                obs::event!("router.attempt_failed", "trace" => t, "slot" => slot, "reason" => "connection-limit")
                            }
                            None => {
                                obs::event!("router.attempt_failed", "slot" => slot, "reason" => "connection-limit")
                            }
                        }
                        continue;
                    }
                    shared.directory.mark_healthy(slot);
                    shared.directory.slots[slot]
                        .forwarded
                        .fetch_add(1, Ordering::Relaxed);
                    if resp.contains("\"status\":\"rejected\"") {
                        // Backpressure: relayed unchanged, never retried
                        // here — the retry decision (and the
                        // `retry_after_ms` hint) belongs to the client.
                        shared
                            .counters
                            .relayed_rejections
                            .fetch_add(1, Ordering::Relaxed);
                        shared.directory.slots[slot]
                            .relayed_rejections
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    shared.counters.forwarded_ok.fetch_add(1, Ordering::Relaxed);
                    return resp;
                }
                None => continue,
            }
        }
        shared.counters.unavailable.fetch_add(1, Ordering::Relaxed);
        obs::count!("router.unavailable");
        handlers::unavailable_response(id, shared.config.retry_after_ms)
    }

    /// One attempt against one slot. `None` = IO failure (recorded).
    fn try_slot(
        &mut self,
        shared: &RouterShared,
        slot: usize,
        line: &str,
        trace: Option<u64>,
    ) -> Option<String> {
        let addr = shared.directory.addr(slot)?;
        let generation = shared.directory.generation(slot);
        match self.conns.get(&slot) {
            Some(c) if c.generation == generation => {}
            _ => {
                self.conns.remove(&slot);
                let client =
                    Client::connect_with(addr, ClientConfig::fast(shared.config.shard_timeout))
                        .map_err(|_| {
                            shared
                                .directory
                                .record_failure(slot, shared.config.failure_threshold);
                            // No line was sent, so this is not a forward
                            // attempt — only a per-slot failover.
                            shared.directory.slots[slot]
                                .failovers
                                .fetch_add(1, Ordering::Relaxed);
                        })
                        .ok()?;
                self.conns.insert(slot, CachedConn { generation, client });
            }
        }
        let conn = self.conns.get_mut(&slot)?;
        shared
            .counters
            .forward_attempts
            .fetch_add(1, Ordering::Relaxed);
        // The router half of the trace-conservation ledger, co-located
        // with the `forward_attempts` increment it audits.
        match trace {
            Some(t) => obs::event!("router.forward_attempt", "trace" => t, "slot" => slot),
            None => obs::event!("router.forward_attempt", "slot" => slot),
        }
        match conn.client.call_raw(line) {
            Ok(resp) => Some(resp),
            Err(_) => {
                self.conns.remove(&slot);
                shared
                    .directory
                    .record_failure(slot, shared.config.failure_threshold);
                shared.directory.slots[slot]
                    .failovers
                    .fetch_add(1, Ordering::Relaxed);
                match trace {
                    Some(t) => {
                        obs::event!("router.attempt_failed", "trace" => t, "slot" => slot, "reason" => "io")
                    }
                    None => obs::event!("router.attempt_failed", "slot" => slot, "reason" => "io"),
                }
                None
            }
        }
    }

    /// Fan `line` out to every slot with an address (fresh connections;
    /// reconfigure is rare). Returns (ok, failed) counts.
    fn broadcast(&self, shared: &RouterShared, line: &str) -> (usize, usize) {
        let (mut ok, mut failed) = (0, 0);
        for slot in 0..shared.directory.len() {
            let Some(addr) = shared.directory.addr(slot) else {
                failed += 1;
                continue;
            };
            let sent = Client::connect_with(addr, ClientConfig::fast(shared.config.shard_timeout))
                .and_then(|mut c| c.call_raw(line));
            match sent {
                Ok(resp) if resp.contains("\"status\":\"ok\"") => ok += 1,
                _ => failed += 1,
            }
        }
        (ok, failed)
    }
}

/// Routing key for one request line: the canonical chain key for `solve`
/// and for every job op (`submit_job` / `job_status` / `cancel_job` must
/// co-locate so one shard owns a chain's queue), a raw-line hash
/// otherwise (including unparseable lines, which are still forwarded so
/// the shard's error bytes come back verbatim).
fn routing_hash(kind: Option<&RequestKind>, line: &str) -> u64 {
    let mut h = DefaultHasher::new();
    match kind {
        Some(RequestKind::Work(WorkRequest::Solve(chain))) => chain.key.hash(&mut h),
        Some(RequestKind::Job(op)) => op.chain_key().hash(&mut h),
        _ => line.hash(&mut h),
    }
    h.finish()
}

/// Handle one client connection: serial request/response forwarding.
fn connection_loop(shared: &RouterShared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let peer_loopback = stream
        .peer_addr()
        .map(|a| a.ip().is_loopback())
        .unwrap_or(false);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = BufWriter::new(write_half);
    let mut reader = BufReader::new(stream);
    let mut forwarder = Forwarder::new();
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let response = handle_request(shared, &mut forwarder, trimmed, peer_loopback);
                    if writeln!(writer, "{response}").is_err() || writer.flush().is_err() {
                        return;
                    }
                }
                line.clear();
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn handle_request(
    shared: &RouterShared,
    forwarder: &mut Forwarder,
    line: &str,
    peer_loopback: bool,
) -> String {
    shared.counters.received.fetch_add(1, Ordering::Relaxed);
    obs::count!("router.requests");
    let parsed = handlers::parse_request(line, crate::quant::DEFAULT_QUANTUM);
    let (id, kind) = match &parsed {
        Ok(r) => (r.id, Some(&r.kind)),
        Err((id, _)) => (*id, None),
    };
    match kind {
        Some(RequestKind::Health) => handlers::ok_response(id, None, &shared.health_body()),
        Some(RequestKind::Stats) => handlers::ok_response(id, None, &shared.stats_body()),
        Some(RequestKind::Metrics) => handlers::ok_response(id, None, &shared.metrics_body()),
        Some(RequestKind::Shutdown) => {
            if peer_loopback || shared.config.allow_remote_shutdown {
                shared.begin_drain();
                handlers::ok_response(id, None, "{\"state\":\"draining\"}")
            } else {
                handlers::error_response(
                    id,
                    "shutdown refused: only loopback peers may drain this router",
                )
            }
        }
        Some(RequestKind::Reconfigure { .. }) => {
            // Quantum must stay fleet-consistent (it is the cache-key
            // epoch), so reconfigure fans out to every shard.
            if !(peer_loopback || shared.config.allow_remote_shutdown) {
                return handlers::error_response(
                    id,
                    "reconfigure refused: only loopback peers may reconfigure this router",
                );
            }
            let (ok, failed) = forwarder.broadcast(shared, line);
            let body = Value::Object(vec![
                ("shards_reconfigured".into(), Value::Number(ok as f64)),
                ("shards_failed".into(), Value::Number(failed as f64)),
            ])
            .to_json();
            if failed == 0 {
                handlers::ok_response(id, None, &body)
            } else {
                handlers::error_response(id, &format!("reconfigure incomplete: {body}"))
            }
        }
        // Work requests — and unparseable lines, which a shard will
        // answer with the identical error bytes a single server would.
        _ => {
            let hash = routing_hash(kind, line);
            // Cross-hop tracing: adopt the client's trace id, or inject a
            // fresh one — but only while a sink is installed (the
            // disabled path forwards the exact original bytes) and only
            // into lines that parsed (a spliced field must not change
            // what the shard's parse sees; unparseable lines are relayed
            // untouched so the shard's error bytes stay authoritative).
            let mut trace = parsed.as_ref().ok().and_then(|r| r.trace);
            let mut spliced = None;
            if obs::enabled() && trace.is_none() && parsed.is_ok() {
                let t = obs::next_trace_id();
                if let Some(with_trace) = telemetry::inject_trace(line, t) {
                    trace = Some(t);
                    spliced = Some(with_trace);
                }
            }
            let line = spliced.as_deref().unwrap_or(line);
            let _span = match trace {
                Some(t) => obs::span!("router.request", "trace" => t),
                None => obs::span!("router.request"),
            };
            forwarder.forward(shared, hash, id, line, trace)
        }
    }
}

/// A running router; keep it to [`shutdown`](RouterHandle::shutdown) and
/// [`join`](RouterHandle::join).
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    accept: Option<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl RouterHandle {
    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live router counters.
    pub fn stats(&self) -> RouterStats {
        self.shared.stats()
    }

    /// The shared fleet directory.
    pub fn directory(&self) -> Arc<ShardDirectory> {
        Arc::clone(&self.shared.directory)
    }

    /// Programmatic drain trigger (same as a client `shutdown` op).
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }

    /// Wait for the drain to finish; returns the final counters.
    pub fn join(mut self) -> RouterStats {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in std::mem::take(&mut *self.conns.lock().unwrap()) {
            let _ = h.join();
        }
        if let Some(h) = self.prober.take() {
            let _ = h.join();
        }
        self.shared.stats()
    }
}

/// The router factory: bind, start accepting, optionally start probing.
pub struct Router;

impl Router {
    /// Bind and start routing over `directory`. Returns once the listener
    /// is accepting.
    pub fn spawn(
        directory: Arc<ShardDirectory>,
        config: RouterConfig,
    ) -> std::io::Result<RouterHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(RouterShared {
            directory,
            config,
            counters: RouterCounters::default(),
            draining: AtomicBool::new(false),
            addr,
            started: Instant::now(),
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("router-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shared.draining.load(Ordering::SeqCst) {
                            return;
                        }
                        let Ok(stream) = stream else { continue };
                        obs::count!("router.connections");
                        conns.lock().unwrap().retain(|h| !h.is_finished());
                        let shared2 = Arc::clone(&shared);
                        let handle = std::thread::Builder::new()
                            .name("router-conn".into())
                            .spawn(move || connection_loop(&shared2, stream))
                            .expect("spawn router connection thread");
                        conns.lock().unwrap().push(handle);
                    }
                })
                .expect("spawn router accept thread")
        };
        let prober = if shared.config.health_interval > Duration::ZERO {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("router-prober".into())
                    .spawn(move || prober_loop(&shared))
                    .expect("spawn router prober thread"),
            )
        } else {
            None
        };
        Ok(RouterHandle {
            addr,
            shared,
            accept: Some(accept),
            prober,
            conns,
        })
    }
}

/// Probe every addressed slot each interval, flipping health bits. Probe
/// timeouts are capped low so a dead shard can't stall the sweep.
fn prober_loop(shared: &RouterShared) {
    let timeout = shared.config.shard_timeout.min(Duration::from_millis(250));
    while !shared.draining.load(Ordering::SeqCst) {
        for slot in 0..shared.directory.len() {
            let Some(addr) = shared.directory.addr(slot) else {
                continue;
            };
            shared.counters.probes.fetch_add(1, Ordering::Relaxed);
            let alive = Client::connect_with(addr, ClientConfig::fast(timeout))
                .and_then(|mut c| c.call_raw("{\"op\":\"health\"}"))
                .map(|r| r.contains("\"status\":\"ok\""))
                .unwrap_or(false);
            if alive {
                shared.directory.mark_healthy(slot);
            } else {
                shared
                    .directory
                    .record_failure(slot, shared.config.failure_threshold);
            }
        }
        // Sleep in small slices so drain is observed promptly.
        let mut remaining = shared.config.health_interval;
        while remaining > Duration::ZERO && !shared.draining.load(Ordering::SeqCst) {
            let slice = remaining.min(Duration::from_millis(50));
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendezvous_rank_is_stable_and_complete() {
        let dir = ShardDirectory::new(5);
        let a = dir.rank(42);
        let b = dir.rank(42);
        assert_eq!(a, b, "ranking is deterministic");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4], "every slot appears once");
        assert_ne!(dir.rank(42), dir.rank(43), "keys spread across slots");
    }

    #[test]
    fn rendezvous_moves_only_the_dead_slots_keys() {
        // The defining property: removing one slot must not reshuffle
        // keys whose first choice survives.
        let dir = ShardDirectory::new(4);
        for key in 0..200u64 {
            let order = dir.rank(key);
            let first = order[0];
            let dead = (first + 1) % 4; // kill some *other* slot
            let next_alive = *order.iter().find(|&&s| s != dead).unwrap();
            assert_eq!(
                next_alive, first,
                "key {key} must stay on its first choice when another slot dies"
            );
        }
    }

    #[test]
    fn directory_health_and_generation_transitions() {
        let dir = ShardDirectory::new(2);
        assert_eq!(dir.live_slots(), Vec::<usize>::new());
        let addr: SocketAddr = "127.0.0.1:9999".parse().unwrap();
        dir.set_addr(0, addr);
        assert_eq!(dir.live_slots(), vec![0]);
        assert_eq!(dir.generation(0), 1);
        dir.record_failure(0, 2);
        assert!(dir.is_healthy(0), "below threshold");
        dir.record_failure(0, 2);
        assert!(!dir.is_healthy(0), "threshold downs the slot");
        dir.set_addr(0, addr);
        assert!(dir.is_healthy(0), "re-assignment revives");
        assert_eq!(dir.generation(0), 2, "generation bumped");
    }

    #[test]
    fn routing_hash_uses_chain_key_for_solves() {
        let quantum = crate::quant::DEFAULT_QUANTUM;
        // Same canonical chain spelled two ways must route identically.
        let a = r#"{"op":"solve","root_rate":1.0,"links":[0.2],"bids":[2.0]}"#;
        let b = r#"{"op":"solve","id":99,"root_rate":1.00,"links":[0.2],"bids":[2.0]}"#;
        let ka = handlers::parse_request(a, quantum).unwrap().kind;
        let kb = handlers::parse_request(b, quantum).unwrap().kind;
        assert_eq!(
            routing_hash(Some(&ka), a),
            routing_hash(Some(&kb), b),
            "routing key is the canonical chain, not the raw line"
        );
    }

    #[test]
    fn job_ops_route_with_the_solve_chain_key() {
        let quantum = crate::quant::DEFAULT_QUANTUM;
        // Every job op on a chain must land on the shard that owns the
        // chain's solves — the per-chain queue lives on exactly one shard.
        let solve = r#"{"op":"solve","root_rate":1.0,"links":[0.2],"bids":[2.0]}"#;
        let submit = r#"{"op":"submit_job","root_rate":1.0,"links":[0.2],"bids":[2.0],"load":2.5}"#;
        let status = r#"{"op":"job_status","root_rate":1.0,"links":[0.2],"bids":[2.0],"job_id":7}"#;
        let cancel = r#"{"op":"cancel_job","root_rate":1.0,"links":[0.2],"bids":[2.0],"job_id":7}"#;
        let hash = |line: &str| {
            let kind = handlers::parse_request(line, quantum).unwrap().kind;
            routing_hash(Some(&kind), line)
        };
        let anchor = hash(solve);
        for line in [submit, status, cancel] {
            assert_eq!(hash(line), anchor, "job op co-locates with solve: {line}");
        }
    }
}
