//! The shard supervisor: spawns a fleet of shard servers, watches them,
//! and restarts the dead with bounded exponential backoff.
//!
//! Two runtimes share one lifecycle:
//!
//! * **In-process** ([`ShardRuntime::InProcess`]) — each shard is a
//!   [`serve`](crate::server::serve) instance in this process. Kills are
//!   graceful drains, so the fleet-wide ledger
//!   (`received == completed + rejected`) is preserved across kills:
//!   retired shards' final snapshots are kept and merged into
//!   [`Supervisor::fleet_snapshot`].
//! * **Child process** ([`ShardRuntime::Process`]) — each shard is a
//!   `dls-serve` child; its ephemeral address is parsed from the
//!   `listening on ADDR` line it prints. Kills are real `SIGKILL`s (the
//!   shard's counters die with it), and the monitor also notices shards
//!   that die on their own via `try_wait`.
//!
//! Every (re)spawn writes the new address into the shared
//! [`ShardDirectory`], bumping the slot generation so the router drops
//! stale connections; restarts back off exponentially
//! (`base · 2^restarts`, capped) so a crash-looping shard cannot busy-spin
//! the monitor.

use crate::router::ShardDirectory;
use crate::server::{serve, ServerConfig, ServerHandle};
use crate::stats::StatsSnapshot;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How shard servers are run.
#[derive(Debug, Clone)]
pub enum ShardRuntime {
    /// Shards are [`serve`] instances inside this process (tests, E25).
    InProcess,
    /// Shards are spawned `dls-serve` child processes.
    Process {
        /// Path to the `dls-serve` binary.
        binary: PathBuf,
        /// Extra CLI arguments appended after the generated ones.
        extra_args: Vec<String>,
    },
}

/// Supervisor tunables.
#[derive(Clone)]
pub struct SupervisorConfig {
    /// Number of shard slots.
    pub shards: usize,
    /// How shards are run.
    pub runtime: ShardRuntime,
    /// Template for each shard's server config (`addr` is overridden with
    /// `127.0.0.1:0` so every shard gets its own ephemeral port).
    pub server: ServerConfig,
    /// How often the monitor sweeps the fleet.
    pub monitor_interval: Duration,
    /// First restart delay.
    pub backoff_base: Duration,
    /// Restart delay cap.
    pub backoff_max: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            shards: 3,
            runtime: ShardRuntime::InProcess,
            server: ServerConfig::default(),
            monitor_interval: Duration::from_millis(50),
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
        }
    }
}

enum ShardProc {
    InProcess(ServerHandle),
    Process {
        child: Child,
        // Keeps draining the child's stdout so it never blocks on a full
        // pipe; joined implicitly when the child dies.
        _stdout_pump: JoinHandle<()>,
    },
}

struct SlotState {
    proc: Option<ShardProc>,
    /// Should the monitor keep this slot running?
    desired: bool,
    /// Restart count, drives the backoff exponent.
    restarts: u32,
    /// Earliest instant the next restart may happen.
    next_restart: Instant,
}

struct SupervisorShared {
    config: SupervisorConfig,
    directory: Arc<ShardDirectory>,
    slots: Mutex<Vec<SlotState>>,
    retired: Mutex<Vec<StatsSnapshot>>,
    /// In-flight graceful retirements of in-process shards; joined before
    /// the final ledger is summed so no snapshot is missed.
    retiring: Mutex<Vec<JoinHandle<()>>>,
    stop: AtomicBool,
}

/// A running fleet supervisor.
pub struct Supervisor {
    shared: Arc<SupervisorShared>,
    monitor: Option<JoinHandle<()>>,
}

fn backoff(config: &SupervisorConfig, restarts: u32) -> Duration {
    let factor = 1u32 << restarts.min(16);
    (config.backoff_base * factor).min(config.backoff_max)
}

/// Spawn one shard, returning its handle and address.
fn spawn_shard(config: &SupervisorConfig) -> std::io::Result<(ShardProc, SocketAddr)> {
    match &config.runtime {
        ShardRuntime::InProcess => {
            let mut server = config.server.clone();
            server.addr = "127.0.0.1:0".into();
            let handle = serve(server)?;
            let addr = handle.addr();
            Ok((ShardProc::InProcess(handle), addr))
        }
        ShardRuntime::Process { binary, extra_args } => {
            let s = &config.server;
            let mut cmd = Command::new(binary);
            cmd.arg("--addr")
                .arg("127.0.0.1:0")
                .arg("--workers")
                .arg(s.workers.to_string())
                .arg("--queue")
                .arg(s.queue_capacity.to_string())
                .arg("--max-conns")
                .arg(s.max_conns.to_string())
                .arg("--deadline-ms")
                .arg(s.default_deadline_ms.to_string())
                .args(extra_args)
                .stdin(Stdio::null())
                .stdout(Stdio::piped())
                .stderr(Stdio::null());
            let mut child = cmd.spawn()?;
            let stdout = child
                .stdout
                .take()
                .ok_or_else(|| std::io::Error::other("no stdout pipe on shard child"))?;
            let mut reader = BufReader::new(stdout);
            let mut line = String::new();
            let addr = loop {
                line.clear();
                if reader.read_line(&mut line)? == 0 {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "shard child exited before announcing its address",
                    ));
                }
                if let Some(rest) = line.trim().split("listening on ").nth(1) {
                    match rest.parse::<SocketAddr>() {
                        Ok(addr) => break addr,
                        Err(_) => continue,
                    }
                }
            };
            let pump = std::thread::Builder::new()
                .name("shard-stdout".into())
                .spawn(move || {
                    let mut sink = String::new();
                    while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
                        sink.clear();
                    }
                })
                .expect("spawn shard stdout pump");
            Ok((
                ShardProc::Process {
                    child,
                    _stdout_pump: pump,
                },
                addr,
            ))
        }
    }
}

/// Retire an in-process shard on a detached thread: drain it and bank the
/// final snapshot so the fleet-wide ledger stays conserved across kills.
fn retire_in_process(shared: &Arc<SupervisorShared>, handle: ServerHandle) {
    let shared2 = Arc::clone(shared);
    let joiner = std::thread::Builder::new()
        .name("shard-retire".into())
        .spawn(move || {
            handle.shutdown();
            let snapshot = handle.join();
            shared2.retired.lock().unwrap().push(snapshot);
        })
        .expect("spawn shard retire thread");
    shared.retiring.lock().unwrap().push(joiner);
}

fn monitor_sweep(shared: &Arc<SupervisorShared>) {
    let n = shared.directory.len();
    for slot in 0..n {
        // Narrow lock: decide what to do, then act.
        enum Action {
            None,
            Reap,
            Restart,
        }
        let action = {
            let mut slots = shared.slots.lock().unwrap();
            let state = &mut slots[slot];
            match &mut state.proc {
                Some(ShardProc::Process { child, .. }) => {
                    if matches!(child.try_wait(), Ok(Some(_))) {
                        Action::Reap
                    } else {
                        Action::None
                    }
                }
                Some(ShardProc::InProcess(_)) => Action::None,
                None => {
                    if state.desired && Instant::now() >= state.next_restart {
                        Action::Restart
                    } else {
                        Action::None
                    }
                }
            }
        };
        match action {
            Action::None => {}
            Action::Reap => {
                obs::count!("supervisor.shard_died", "slot" => slot);
                obs::event!("supervisor.shard_died", "slot" => slot);
                shared.directory.mark_down(slot);
                let mut slots = shared.slots.lock().unwrap();
                let state = &mut slots[slot];
                if let Some(ShardProc::Process { mut child, .. }) = state.proc.take() {
                    let _ = child.wait();
                }
                state.next_restart = Instant::now() + backoff(&shared.config, state.restarts);
            }
            Action::Restart => match spawn_shard(&shared.config) {
                Ok((proc, addr)) => {
                    obs::count!("supervisor.shard_restarted", "slot" => slot);
                    let mut slots = shared.slots.lock().unwrap();
                    let state = &mut slots[slot];
                    state.proc = Some(proc);
                    state.restarts += 1;
                    obs::event!(
                        "supervisor.shard_restarted",
                        "slot" => slot,
                        "restarts" => state.restarts as u64,
                    );
                    shared.directory.note_restart(slot);
                    shared.directory.set_addr(slot, addr);
                }
                Err(_) => {
                    let mut slots = shared.slots.lock().unwrap();
                    let state = &mut slots[slot];
                    state.restarts += 1;
                    state.next_restart = Instant::now() + backoff(&shared.config, state.restarts);
                }
            },
        }
    }
}

impl Supervisor {
    /// Spawn the whole fleet and start the monitor. Fails if any initial
    /// shard fails to start.
    pub fn start(config: SupervisorConfig) -> std::io::Result<Self> {
        assert!(config.shards > 0, "a fleet needs at least one shard");
        let directory = ShardDirectory::new(config.shards);
        let mut slots = Vec::with_capacity(config.shards);
        for slot in 0..config.shards {
            let (proc, addr) = spawn_shard(&config)?;
            directory.set_addr(slot, addr);
            slots.push(SlotState {
                proc: Some(proc),
                desired: true,
                restarts: 0,
                next_restart: Instant::now(),
            });
        }
        let shared = Arc::new(SupervisorShared {
            config,
            directory,
            slots: Mutex::new(slots),
            retired: Mutex::new(Vec::new()),
            retiring: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        });
        let monitor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("supervisor-monitor".into())
                .spawn(move || {
                    while !shared.stop.load(Ordering::SeqCst) {
                        monitor_sweep(&shared);
                        std::thread::sleep(shared.config.monitor_interval);
                    }
                })
                .expect("spawn supervisor monitor")
        };
        Ok(Self {
            shared,
            monitor: Some(monitor),
        })
    }

    /// The shared fleet directory (hand this to the router).
    pub fn directory(&self) -> Arc<ShardDirectory> {
        Arc::clone(&self.shared.directory)
    }

    /// Kill the shard in `slot`. `restart` decides whether the monitor
    /// brings it back (after backoff) or leaves the slot dead.
    ///
    /// In-process shards drain gracefully (their final snapshot is banked
    /// for [`fleet_snapshot`](Supervisor::fleet_snapshot)); process shards
    /// are `SIGKILL`ed — abrupt, mid-request death, exactly what the
    /// failover tests need.
    pub fn kill_shard(&self, slot: usize, restart: bool) {
        obs::event!("supervisor.kill", "slot" => slot, "restart" => restart);
        self.shared.directory.mark_down(slot);
        let proc = {
            let mut slots = self.shared.slots.lock().unwrap();
            let state = &mut slots[slot];
            state.desired = restart;
            state.next_restart = Instant::now() + backoff(&self.shared.config, state.restarts);
            state.proc.take()
        };
        match proc {
            Some(ShardProc::InProcess(handle)) => retire_in_process(&self.shared, handle),
            Some(ShardProc::Process { mut child, .. }) => {
                let _ = child.kill();
                let _ = child.wait();
            }
            None => {}
        }
    }

    /// Total restarts across the fleet so far.
    pub fn restarts(&self) -> u64 {
        self.shared
            .slots
            .lock()
            .unwrap()
            .iter()
            .map(|s| s.restarts as u64)
            .sum()
    }

    /// Fleet-wide counter snapshot: live in-process shards plus retired
    /// ones. (Process shards keep their counters in their own address
    /// space; they contribute zeros here — query their `stats` op
    /// directly instead.)
    pub fn fleet_snapshot(&self) -> StatsSnapshot {
        let mut total = StatsSnapshot::default();
        {
            let slots = self.shared.slots.lock().unwrap();
            for state in slots.iter() {
                if let Some(ShardProc::InProcess(handle)) = &state.proc {
                    total.merge(&handle.stats().snapshot());
                }
            }
        }
        for snap in self.shared.retired.lock().unwrap().iter() {
            total.merge(snap);
        }
        total
    }

    /// Stop the monitor and drain every shard. Returns the final fleet
    /// snapshot (in-process shards and retirees; killed process shards
    /// took their counters with them).
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
        let procs: Vec<(usize, Option<ShardProc>)> = {
            let mut slots = self.shared.slots.lock().unwrap();
            slots
                .iter_mut()
                .enumerate()
                .map(|(i, s)| {
                    s.desired = false;
                    (i, s.proc.take())
                })
                .collect()
        };
        for (slot, proc) in procs {
            self.shared.directory.mark_down(slot);
            match proc {
                Some(ShardProc::InProcess(handle)) => {
                    handle.shutdown();
                    let snapshot = handle.join();
                    self.shared.retired.lock().unwrap().push(snapshot);
                }
                Some(ShardProc::Process { mut child, .. }) => {
                    // Graceful first (the shard drains and exits), kill as
                    // a fallback.
                    let drained = self
                        .shared
                        .directory
                        .addr(slot)
                        .and_then(|addr| {
                            crate::client::Client::connect_with(
                                addr,
                                crate::client::ClientConfig::fast(Duration::from_millis(500)),
                            )
                            .ok()
                        })
                        .and_then(|mut c| c.call_raw("{\"op\":\"shutdown\"}").ok())
                        .is_some();
                    if drained {
                        let deadline = Instant::now() + Duration::from_secs(5);
                        while Instant::now() < deadline {
                            if matches!(child.try_wait(), Ok(Some(_))) {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(20));
                        }
                    }
                    let _ = child.kill();
                    let _ = child.wait();
                }
                None => {}
            }
        }
        // Wait for every in-flight graceful retirement to bank its
        // snapshot before summing the fleet ledger.
        for h in std::mem::take(&mut *self.shared.retiring.lock().unwrap()) {
            let _ = h.join();
        }
        let mut total = StatsSnapshot::default();
        for snap in self.shared.retired.lock().unwrap().iter() {
            total.merge(snap);
        }
        total
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        // Best-effort cleanup if `shutdown` was never called: stop the
        // monitor and kill any child processes so tests can't leak them.
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
        let mut slots = self.shared.slots.lock().unwrap();
        for state in slots.iter_mut() {
            match state.proc.take() {
                Some(ShardProc::Process { mut child, .. }) => {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                Some(ShardProc::InProcess(handle)) => {
                    handle.shutdown();
                    let _ = handle.join();
                }
                None => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let config = SupervisorConfig {
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            ..SupervisorConfig::default()
        };
        assert_eq!(backoff(&config, 0), Duration::from_millis(50));
        assert_eq!(backoff(&config, 1), Duration::from_millis(100));
        assert_eq!(backoff(&config, 2), Duration::from_millis(200));
        assert_eq!(backoff(&config, 10), Duration::from_secs(2), "capped");
        assert_eq!(backoff(&config, 63), Duration::from_secs(2), "no overflow");
    }

    #[test]
    fn in_process_fleet_starts_and_drains() {
        let config = SupervisorConfig {
            shards: 2,
            server: ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
            ..SupervisorConfig::default()
        };
        let sup = Supervisor::start(config).unwrap();
        let dir = sup.directory();
        assert_eq!(dir.live_slots(), vec![0, 1]);
        let addr = dir.addr(0).unwrap();
        let mut c = crate::client::Client::connect(addr).unwrap();
        let resp = c.call("{\"op\":\"health\"}").unwrap();
        assert_eq!(
            resp.get("status").and_then(minijson::Value::as_str),
            Some("ok")
        );
        let total = sup.shutdown();
        assert!(total.conserved(), "fleet ledger conserved: {total:?}");
        assert_eq!(total.received, 1);
    }

    #[test]
    fn killed_in_process_shard_restarts_with_new_generation() {
        let config = SupervisorConfig {
            shards: 1,
            monitor_interval: Duration::from_millis(10),
            backoff_base: Duration::from_millis(10),
            server: ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
            ..SupervisorConfig::default()
        };
        let sup = Supervisor::start(config).unwrap();
        let dir = sup.directory();
        let first_addr = dir.addr(0).unwrap();
        let first_gen = dir.generation(0);
        sup.kill_shard(0, true);
        let deadline = Instant::now() + Duration::from_secs(5);
        while dir.generation(0) == first_gen && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(dir.generation(0) > first_gen, "shard was restarted");
        assert!(dir.is_healthy(0));
        assert_eq!(sup.restarts(), 1);
        let new_addr = dir.addr(0).unwrap();
        let mut c = crate::client::Client::connect(new_addr).unwrap();
        assert!(c.call_raw("{\"op\":\"health\"}").unwrap().contains("ok"));
        let _ = (first_addr, sup.shutdown());
    }
}
