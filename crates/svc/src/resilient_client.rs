//! A retrying client: bounded retries with exponential backoff and
//! seeded jitter, `retry_after_ms` honoring, and a circuit breaker.
//!
//! Layered on the blocking [`Client`], which already bounds every
//! syscall (connect/read/write timeouts). This wrapper adds *policy*:
//!
//! * **Transport failures** (connect refused, IO error, timeout,
//!   corrupted/unparseable response) tear down the connection, count
//!   toward the circuit breaker, and are retried after an exponential
//!   backoff with seeded jitter.
//! * **`rejected` responses** (backpressure, draining, router
//!   `unavailable`) are retried after `max(retry_after_ms, backoff)` —
//!   the server's hint is honored, never shortened. They do **not**
//!   count toward the breaker: a rejecting server is alive.
//! * **`ok` / `error` / `timeout` responses** are terminal — the server
//!   answered; re-litigating an `error` (malformed request) or a
//!   deadline policy decision is the caller's business, not transport's.
//!
//! The breaker opens after [`RetryPolicy::breaker_threshold`] consecutive
//! transport failures; while open, calls wait out the cooldown before the
//! half-open probe instead of hammering a dead server. All waiting is
//! bounded by `max_attempts`, so a call always terminates.
//!
//! Retrying is safe here because every work op is idempotent: `solve` is
//! a pure function of the canonical chain and `ft_run` of its seed, so a
//! duplicate execution (e.g. response lost after the server solved)
//! returns the identical bytes.

use crate::client::{Client, ClientConfig};
use minijson::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Retry/backoff/breaker policy for a [`ResilientClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Attempts per call (first try included).
    pub max_attempts: u32,
    /// First retry delay; doubles per retry.
    pub base_backoff: Duration,
    /// Retry delay cap.
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a uniform
    /// factor in `[1 - jitter, 1 + jitter]` (seeded, deterministic).
    pub jitter: f64,
    /// Consecutive transport failures that open the breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker holds calls off before the half-open
    /// probe.
    pub breaker_cooldown: Duration,
    /// IO bounds for the underlying connection.
    pub client: ClientConfig,
    /// Seed for the jitter RNG.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(1),
            jitter: 0.2,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(500),
            client: ClientConfig::default(),
            seed: 0,
        }
    }
}

/// A terminal response, with how hard it was to get.
#[derive(Debug, Clone)]
pub struct CallOutcome {
    /// Parsed response.
    pub value: Value,
    /// The raw response line (exact server bytes).
    pub raw: String,
    /// Attempts spent (1 = first try succeeded).
    pub attempts: u32,
    /// `rejected` responses absorbed along the way.
    pub rejections: u32,
}

/// Why a call gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallError {
    /// Every attempt failed; carries the last failure description.
    Exhausted {
        /// Attempts spent.
        attempts: u32,
        /// Human-readable description of the last failure.
        last_error: String,
    },
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::Exhausted {
                attempts,
                last_error,
            } => write!(f, "call exhausted after {attempts} attempts: {last_error}"),
        }
    }
}

impl std::error::Error for CallError {}

/// Lifetime counters for one [`ResilientClient`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Calls issued.
    pub calls: u64,
    /// Attempts beyond each call's first.
    pub retries: u64,
    /// Connections (re)established.
    pub reconnects: u64,
    /// `rejected` responses absorbed.
    pub rejections: u64,
    /// Times the breaker opened.
    pub breaker_opens: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Breaker {
    Closed {
        consecutive_failures: u32,
    },
    /// Open; the next call waits out the remaining cooldown (tracked as
    /// a deadline) and then probes half-open.
    Open,
}

/// The retrying client; see the module docs.
pub struct ResilientClient {
    addr: String,
    policy: RetryPolicy,
    conn: Option<Client>,
    rng: StdRng,
    breaker: Breaker,
    open_until: Option<std::time::Instant>,
    stats: RetryStats,
}

impl ResilientClient {
    /// A client for `addr` (connects lazily on the first call).
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> Self {
        let seed = policy.seed;
        Self {
            addr: addr.into(),
            policy,
            conn: None,
            rng: StdRng::seed_from_u64(seed),
            breaker: Breaker::Closed {
                consecutive_failures: 0,
            },
            open_until: None,
            stats: RetryStats::default(),
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// Exponential backoff with seeded jitter for retry `retry` (0-based).
    fn backoff(&mut self, retry: u32) -> Duration {
        let factor = 1u32 << retry.min(16);
        let base = (self.policy.base_backoff * factor).min(self.policy.max_backoff);
        if self.policy.jitter <= 0.0 {
            return base;
        }
        let j = self.policy.jitter.min(1.0);
        let scale = 1.0 - j + self.rng.gen_range(0.0..(2.0 * j));
        base.mul_f64(scale)
    }

    fn on_transport_failure(&mut self, trace: Option<u64>) {
        self.conn = None;
        let failures = match self.breaker {
            Breaker::Closed {
                consecutive_failures,
            } => consecutive_failures + 1,
            Breaker::Open => return, // already open
        };
        if failures >= self.policy.breaker_threshold {
            self.breaker = Breaker::Open;
            self.open_until = Some(std::time::Instant::now() + self.policy.breaker_cooldown);
            self.stats.breaker_opens += 1;
            match trace {
                Some(t) => obs::count!("client.breaker.open", "trace" => t),
                None => obs::count!("client.breaker.open"),
            }
        } else {
            self.breaker = Breaker::Closed {
                consecutive_failures: failures,
            };
        }
    }

    fn on_success(&mut self, trace: Option<u64>) {
        if self.breaker == Breaker::Open {
            // Half-open probe succeeded: the breaker closes again.
            match trace {
                Some(t) => obs::event!("client.breaker.close", "trace" => t),
                None => obs::event!("client.breaker.close"),
            }
        }
        self.breaker = Breaker::Closed {
            consecutive_failures: 0,
        };
        self.open_until = None;
    }

    /// One transport attempt: connect if needed, round-trip, parse.
    fn attempt(&mut self, request: &str) -> Result<Value1, String> {
        if self.conn.is_none() {
            match Client::connect_with(&*self.addr, self.policy.client) {
                Ok(c) => {
                    self.stats.reconnects += 1;
                    self.conn = Some(c);
                }
                Err(e) => return Err(format!("connect {}: {e}", self.addr)),
            }
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        let raw = match conn.call_raw(request) {
            Ok(raw) => raw,
            Err(e) => return Err(format!("io: {e}")),
        };
        match Value::parse(&raw) {
            Ok(value) => Ok((value, raw)),
            Err(e) => Err(format!("unparseable response ({e}): {raw:?}")),
        }
    }

    /// Round-trip `request` to a terminal response, retrying per policy.
    pub fn call(&mut self, request: &str) -> Result<CallOutcome, CallError> {
        self.stats.calls += 1;
        // The request line is otherwise opaque bytes to this layer; only
        // peek at its trace id when a sink is actually installed.
        let trace = if obs::enabled() {
            crate::telemetry::extract_trace(request)
        } else {
            None
        };
        let _span = match trace {
            Some(t) => obs::span!("client.call", "trace" => t),
            None => obs::span!("client.call"),
        };
        let mut last_error = String::from("no attempt made");
        let mut rejections: u32 = 0;
        for attempt in 1..=self.policy.max_attempts.max(1) {
            if attempt > 1 {
                self.stats.retries += 1;
                match trace {
                    Some(t) => {
                        obs::event!("client.retry", "trace" => t, "attempt" => attempt as u64)
                    }
                    None => obs::event!("client.retry", "attempt" => attempt as u64),
                }
            }
            // Open breaker: wait out the cooldown, then probe half-open.
            if self.breaker == Breaker::Open {
                if let Some(until) = self.open_until {
                    let now = std::time::Instant::now();
                    if now < until {
                        std::thread::sleep(until - now);
                    }
                }
            }
            match self.attempt(request) {
                Err(e) => {
                    last_error = e;
                    self.on_transport_failure(trace);
                    if attempt < self.policy.max_attempts {
                        let d = self.backoff(attempt - 1);
                        std::thread::sleep(d);
                    }
                }
                Ok((value, raw)) => {
                    let status = value.get("status").and_then(Value::as_str);
                    match status {
                        Some("ok") | Some("error") | Some("timeout") => {
                            self.on_success(trace);
                            return Ok(CallOutcome {
                                value,
                                raw,
                                attempts: attempt,
                                rejections,
                            });
                        }
                        Some("rejected") => {
                            // The server is alive — not a breaker event.
                            self.on_success(trace);
                            rejections += 1;
                            self.stats.rejections += 1;
                            match trace {
                                Some(t) => obs::count!("client.rejected", "trace" => t),
                                None => obs::count!("client.rejected"),
                            }
                            let hint = value
                                .get("retry_after_ms")
                                .and_then(Value::as_u64)
                                .map(Duration::from_millis)
                                .unwrap_or(Duration::ZERO);
                            last_error = format!("rejected: {raw}");
                            if attempt < self.policy.max_attempts {
                                let d = self.backoff(attempt - 1).max(hint);
                                std::thread::sleep(d);
                            }
                        }
                        other => {
                            last_error = format!("unknown status {other:?} in {raw:?}");
                            self.on_transport_failure(trace);
                            if attempt < self.policy.max_attempts {
                                let d = self.backoff(attempt - 1);
                                std::thread::sleep(d);
                            }
                        }
                    }
                }
            }
        }
        Err(CallError::Exhausted {
            attempts: self.policy.max_attempts.max(1),
            last_error,
        })
    }
}

/// (parsed, raw) pair from one successful transport attempt.
type Value1 = (Value, String);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{serve, ServerConfig};

    fn policy_fast() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(40),
            jitter: 0.2,
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(20),
            client: ClientConfig::fast(Duration::from_millis(250)),
            seed: 42,
        }
    }

    #[test]
    fn first_try_success_costs_one_attempt() {
        let server = serve(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        })
        .unwrap();
        let mut c = ResilientClient::new(server.addr().to_string(), policy_fast());
        let out = c
            .call(r#"{"op":"solve","id":1,"root_rate":1.0,"links":[0.2],"bids":[2.0]}"#)
            .unwrap();
        assert_eq!(out.attempts, 1);
        assert_eq!(out.rejections, 0);
        assert_eq!(out.value.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(c.stats().retries, 0);
        server.shutdown();
        server.join();
    }

    #[test]
    fn dead_server_exhausts_and_opens_breaker() {
        // Bind then drop: the port is (very likely) refused afterwards.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let mut c = ResilientClient::new(addr.to_string(), policy_fast());
        let err = c.call(r#"{"op":"health"}"#).unwrap_err();
        match err {
            CallError::Exhausted { attempts, .. } => assert_eq!(attempts, 4),
        }
        assert!(c.stats().breaker_opens >= 1, "{:?}", c.stats());
        assert_eq!(c.stats().retries, 3);
    }

    #[test]
    fn server_error_is_terminal_not_retried() {
        let server = serve(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        })
        .unwrap();
        let mut c = ResilientClient::new(server.addr().to_string(), policy_fast());
        let out = c.call(r#"{"op":"mine_bitcoin"}"#).unwrap();
        assert_eq!(out.attempts, 1, "errors are answers, not failures");
        assert_eq!(
            out.value.get("status").and_then(Value::as_str),
            Some("error")
        );
        server.shutdown();
        server.join();
    }

    #[test]
    fn backoff_is_seeded_deterministic_and_bounded() {
        let mk = || ResilientClient::new("127.0.0.1:1", policy_fast());
        let (mut a, mut b) = (mk(), mk());
        for retry in 0..6 {
            let (da, db) = (a.backoff(retry), b.backoff(retry));
            assert_eq!(da, db, "same seed, same jitter");
            assert!(da <= Duration::from_millis(48), "cap × (1 + jitter)");
        }
        let mut no_jitter = ResilientClient::new(
            "127.0.0.1:1",
            RetryPolicy {
                jitter: 0.0,
                ..policy_fast()
            },
        );
        assert_eq!(no_jitter.backoff(0), Duration::from_millis(5));
        assert_eq!(no_jitter.backoff(2), Duration::from_millis(20));
        assert_eq!(no_jitter.backoff(10), Duration::from_millis(40));
    }
}
