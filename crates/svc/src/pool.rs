//! The fixed-size worker pool: threads popping jobs off the bounded queue,
//! executing handlers, and replying through each connection's writer
//! channel.

use crate::cache::SolverCache;
use crate::handlers::{self, WorkRequest};
use crate::queue::BoundedQueue;
use crate::stats::StatsRegistry;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Shared state every worker and connection thread sees.
pub struct ServiceCtx {
    /// Solver cache (shared across workers).
    pub cache: SolverCache,
    /// Counters and latency shards.
    pub stats: StatsRegistry,
    /// True once a drain began: stop admitting, finish in-flight.
    pub draining: AtomicBool,
    /// Deadline applied when a request carries none.
    pub default_deadline: Duration,
    /// Retry hint handed out with backpressure rejections.
    pub retry_after_ms: u64,
    /// Honor `shutdown` (and `reconfigure`) ops from non-loopback peers.
    pub allow_remote_shutdown: bool,
    /// Solver-cache quantization step, stored as `f64` bits so a
    /// `reconfigure` op can swap it while workers run. Read it through
    /// [`ServiceCtx::quantum`]; change it through
    /// [`ServiceCtx::set_quantum`] (which also invalidates the cache).
    pub quantum_bits: AtomicU64,
    /// When the server installed a [`obs::MemorySink`], the stats endpoint
    /// mirrors its counter totals.
    pub obs_memory: Option<Arc<obs::MemorySink>>,
    /// Per-chain job queues and their scheduler threads
    /// ([`crate::jobs`]).
    pub jobs: crate::jobs::JobRegistry,
}

impl ServiceCtx {
    /// The current quantization step.
    pub fn quantum(&self) -> f64 {
        f64::from_bits(self.quantum_bits.load(Ordering::SeqCst))
    }

    /// Install a new quantization step and drop every cache entry keyed
    /// under the old one. Returns `true` when the cache was cleared — a
    /// stale entry must never answer a request quantized differently.
    pub fn set_quantum(&self, quantum: f64) -> bool {
        self.quantum_bits.store(quantum.to_bits(), Ordering::SeqCst);
        self.cache.invalidate_on_quantum_change(quantum)
    }
}

/// One unit of work: a parsed request plus its reply channel.
pub struct Job {
    /// The work to perform.
    pub request: WorkRequest,
    /// Correlation id to echo.
    pub id: Option<i64>,
    /// Deadline measured from `enqueued`.
    pub deadline: Duration,
    /// Admission instant.
    pub enqueued: Instant,
    /// Cross-hop trace id, tagged onto every span/event this job emits.
    pub trace: Option<u64>,
    /// The owning connection's writer channel.
    pub reply: mpsc::Sender<String>,
}

/// Execute one job to its response string, updating stats. Split from the
/// thread loop so tests can drive it synchronously.
pub fn execute(worker: usize, ctx: &ServiceCtx, job: &Job) -> String {
    let endpoint = job.request.endpoint();
    // The span + queue-wait sample carry the trace id when the request
    // has one; both cost nothing while instrumentation is disabled.
    let _span = match job.trace {
        Some(t) => {
            obs::span!("svc.execute", "trace" => t, "op" => endpoint.name(), "worker" => worker)
        }
        None => obs::span!("svc.execute", "op" => endpoint.name(), "worker" => worker),
    };
    let waited = job.enqueued.elapsed();
    match job.trace {
        Some(t) => obs::hist!("svc.queue_wait_us", waited.as_secs_f64() * 1e6, "trace" => t),
        None => obs::hist!("svc.queue_wait_us", waited.as_secs_f64() * 1e6),
    }
    if waited > job.deadline {
        ctx.stats.on_timeout();
        ctx.stats.on_completed(false);
        match job.trace {
            Some(t) => obs::count!("svc.timeout", "trace" => t),
            None => obs::count!("svc.timeout"),
        }
        return handlers::timeout_response(job.id, job.deadline.as_millis() as u64);
    }
    obs::count!("svc.requests");
    let response = match &job.request {
        WorkRequest::Solve(chain) => {
            let (body, hit) = ctx
                .cache
                .get_or_insert(&chain.key, || handlers::solve_body(chain));
            match (hit, job.trace) {
                (true, Some(t)) => obs::count!("svc.cache.hit", "trace" => t),
                (true, None) => obs::count!("svc.cache.hit"),
                (false, Some(t)) => obs::count!("svc.cache.miss", "trace" => t),
                (false, None) => obs::count!("svc.cache.miss"),
            }
            ctx.stats.on_completed(false);
            handlers::ok_response(job.id, Some(hit), &body)
        }
        WorkRequest::FtRun {
            root_rate,
            rates,
            links,
            seed,
            crash,
        } => match handlers::ft_body(*root_rate, rates, links, *seed, *crash) {
            Ok(body) => {
                ctx.stats.on_completed(false);
                handlers::ok_response(job.id, None, &body)
            }
            Err(msg) => {
                ctx.stats.on_completed(true);
                handlers::error_response(job.id, &msg)
            }
        },
    };
    let micros = job.enqueued.elapsed().as_secs_f64() * 1e6;
    ctx.stats.record_latency(worker, endpoint, micros);
    match job.trace {
        Some(t) => obs::hist!("svc.latency_us", micros, "trace" => t),
        None => obs::hist!("svc.latency_us", micros),
    }
    response
}

/// The running pool; join after the queue closes to finish the drain.
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `n` workers consuming from `queue`.
    pub fn spawn(n: usize, queue: Arc<BoundedQueue<Job>>, ctx: Arc<ServiceCtx>) -> Self {
        let handles = (0..n.max(1))
            .map(|worker| {
                let queue = Arc::clone(&queue);
                let ctx = Arc::clone(&ctx);
                std::thread::Builder::new()
                    .name(format!("dls-worker-{worker}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            let response = execute(worker, &ctx, &job);
                            // A send failure means the connection is gone;
                            // the request still counts as completed.
                            let _ = job.reply.send(response);
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        Self { handles }
    }

    /// Wait for every worker to finish (the queue must be closed first or
    /// this blocks forever).
    pub fn join(self) {
        for h in self.handles {
            let _ = h.join();
        }
    }

    /// Number of worker threads.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Pools always hold at least one worker.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant;
    use crate::stats::StatsSnapshot;

    fn ctx() -> ServiceCtx {
        ServiceCtx {
            cache: SolverCache::new(4, 64),
            stats: StatsRegistry::new(2),
            draining: AtomicBool::new(false),
            default_deadline: Duration::from_secs(5),
            retry_after_ms: 25,
            allow_remote_shutdown: false,
            quantum_bits: AtomicU64::new(quant::DEFAULT_QUANTUM.to_bits()),
            obs_memory: None,
            jobs: crate::jobs::JobRegistry::new(crate::jobs::DEFAULT_MAX_QUEUED_JOBS),
        }
    }

    #[test]
    fn quantum_swap_clears_the_cache() {
        let ctx = ctx();
        let (tx, _rx) = mpsc::channel();
        execute(0, &ctx, &solve_job(tx.clone(), Duration::from_secs(5)));
        assert_eq!(ctx.cache.len(), 1);
        assert!(ctx.set_quantum(1e-6), "a new quantum must clear the cache");
        assert_eq!(ctx.quantum(), 1e-6);
        assert_eq!(ctx.cache.len(), 0);
        let warm = execute(0, &ctx, &solve_job(tx, Duration::from_secs(5)));
        assert!(
            warm.contains("\"cached\":false"),
            "post-invalidation solve must be cold: {warm}"
        );
    }

    fn solve_job(reply: mpsc::Sender<String>, deadline: Duration) -> Job {
        let chain = quant::canonicalize(1.0, &[0.2, 0.1], &[2.0, 0.5], 1e-9).unwrap();
        Job {
            request: WorkRequest::Solve(chain),
            id: Some(1),
            deadline,
            enqueued: Instant::now(),
            trace: None,
            reply,
        }
    }

    #[test]
    fn execute_solve_hits_cache_second_time() {
        let ctx = ctx();
        let (tx, _rx) = mpsc::channel();
        let cold = execute(0, &ctx, &solve_job(tx.clone(), Duration::from_secs(5)));
        let warm = execute(1, &ctx, &solve_job(tx, Duration::from_secs(5)));
        assert!(cold.contains("\"cached\":false"));
        assert!(warm.contains("\"cached\":true"));
        let strip = |s: &str| {
            s.replace("\"cached\":true", "")
                .replace("\"cached\":false", "")
        };
        assert_eq!(strip(&cold), strip(&warm), "hit must be bit-identical");
        assert_eq!(ctx.cache.hits(), 1);
        assert_eq!(ctx.stats.snapshot().completed, 2);
    }

    #[test]
    fn expired_deadline_yields_timeout() {
        let ctx = ctx();
        let (tx, _rx) = mpsc::channel();
        let job = solve_job(tx, Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        let resp = execute(0, &ctx, &job);
        assert!(resp.contains("\"status\":\"timeout\""));
        let s: StatsSnapshot = ctx.stats.snapshot();
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.completed, 1);
    }

    #[test]
    fn pool_drains_queue_then_exits() {
        let ctx = Arc::new(ctx());
        let queue = Arc::new(BoundedQueue::new(32));
        let pool = WorkerPool::spawn(3, Arc::clone(&queue), Arc::clone(&ctx));
        let (tx, rx) = mpsc::channel();
        for _ in 0..10 {
            queue
                .try_push(solve_job(tx.clone(), Duration::from_secs(5)))
                .map_err(|_| ())
                .unwrap();
        }
        drop(tx);
        queue.close();
        pool.join();
        let replies: Vec<String> = rx.iter().collect();
        assert_eq!(replies.len(), 10);
        assert_eq!(ctx.stats.snapshot().completed, 10);
        assert_eq!(ctx.cache.misses(), 1);
        assert_eq!(ctx.cache.hits(), 9);
    }
}
