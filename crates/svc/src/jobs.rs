//! Online multi-job scheduling per canonical chain.
//!
//! Each canonical chain ([`crate::quant::ChainKey`]) owns a job queue into
//! which `submit_job` ops enqueue divisible loads. A per-chain scheduler
//! thread drains the queue in batches and composes
//! [`dlt::multiround`] installments across successive jobs — round `k` of
//! job `j+1` ships while the tail installments of job `j` are still
//! computing ([`dlt::multiround::compose`]).
//!
//! ### The pipelining rule
//! A job submitted without an explicit `rounds` is *auto*: the scheduler
//! composes the batch twice — once with the chain's best round count
//! `k* = best_rounds(net, comm_startup, 16)` per auto job and once with
//! single-installment (`k = 1`) auto jobs — and keeps whichever batch
//! finishes first. The `k = 1` composition is the sequential timeline with
//! the inter-job barrier removed, so the served batch never finishes later
//! than running every job as an independent one-shot solve; `k*` captures
//! the multiround ramp-up savings whenever they are real. Jobs with an
//! explicit `rounds` are honored as-is in both candidates.
//!
//! ### Payment carry-over
//! Every installment posts its per-processor assigned/actual loads into a
//! [`mechanism::JobLedger`]; the job settles once, at completion, via
//! `JobLedger::finalize` — one ledger entry per job, reproducing the
//! one-shot settlement of the whole load (settlement is linear in load).
//!
//! ### Frozen single-job guarantee
//! A batch of exactly one *plain* job (`load = 1`, no explicit `rounds`,
//! no `comm_startup`) is served through the solver cache exactly like the
//! `solve` op — `cache.get_or_insert(key, solve_body)` wrapped by
//! [`crate::handlers::ok_response`] — so its response bytes are
//! bit-identical to today's `solve` (diff-checked by E28 and CI).

use crate::handlers;
use crate::pool::ServiceCtx;
use crate::quant::{CanonicalChain, ChainKey};
use crate::stats::Endpoint;
use dlt::model::LinearNetwork;
use dlt::multiround::{self, MultiRoundConfig, PipelinedJob};
use mechanism::{JobLedger, PaymentInputs};
use minijson::Value;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Round-count ceiling for the auto (`rounds` unspecified) sweep.
pub const MAX_AUTO_ROUNDS: usize = 16;

/// Most jobs a server holds queued across all chains before submits are
/// rejected with backpressure.
pub const DEFAULT_MAX_QUEUED_JOBS: usize = 1024;

/// Bounded retention of finished job records for `job_status`.
const MAX_RECORDS: usize = 4096;

/// Bounded retention of idle per-chain queue entries (per-chain completed
/// counters are dropped for the oldest idle chains past this).
const MAX_IDLE_CHAINS: usize = 1024;

/// One submitted divisible load.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The canonical chain whose queue this job joins.
    pub chain: CanonicalChain,
    /// Total load, in units of the chain's unit workload.
    pub load: f64,
    /// Explicit installment count; `None` lets the pipelining rule choose.
    pub rounds: Option<usize>,
    /// Per-installment communication startup.
    pub comm_startup: f64,
}

impl JobSpec {
    /// A *plain* job is today's `solve` in job clothing: unit load, no
    /// startup, no explicit multi-installment request. A batch holding
    /// exactly one plain job takes the frozen cached-solve path.
    pub fn is_plain(&self) -> bool {
        self.load == 1.0 && self.comm_startup == 0.0 && matches!(self.rounds, None | Some(1))
    }
}

/// Lifecycle states reported by `job_status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Cancelled,
    Rejected,
}

impl JobState {
    fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Rejected => "rejected",
        }
    }
}

struct JobRecord {
    state: JobState,
    key: ChainKey,
    /// Composed finish time, once done (absent for the frozen solve path).
    finish: Option<f64>,
    rounds: Option<usize>,
}

struct PendingJob {
    id: u64,
    spec: JobSpec,
    req_id: Option<i64>,
    trace: Option<u64>,
    enqueued: Instant,
    reply: mpsc::Sender<String>,
}

struct ChainEntry {
    queue: VecDeque<PendingJob>,
    /// A scheduler thread currently owns this chain's queue.
    active: bool,
    completed: u64,
}

impl ChainEntry {
    fn new() -> Self {
        Self {
            queue: VecDeque::new(),
            active: false,
            completed: 0,
        }
    }
}

struct Inner {
    chains: HashMap<ChainKey, ChainEntry>,
    records: BTreeMap<u64, JobRecord>,
    queued_total: usize,
    schedulers: Vec<JoinHandle<()>>,
}

/// Job ids are process-unique (not per-registry): an in-process fleet of
/// shards shares one trace sink, and `dls-trace` joins `job.*` lifecycle
/// events by id, so two shards must never mint the same one.
static NEXT_JOB_ID: AtomicU64 = AtomicU64::new(1);

/// The per-server job queue registry: one entry per canonical chain, a
/// bounded record map for `job_status`, and the scheduler thread handles.
pub struct JobRegistry {
    inner: Mutex<Inner>,
    max_queued: usize,
    submitted: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    rejected: AtomicU64,
    active_installments: AtomicU64,
}

impl JobRegistry {
    /// An empty registry admitting at most `max_queued` queued jobs.
    pub fn new(max_queued: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                chains: HashMap::new(),
                records: BTreeMap::new(),
                queued_total: 0,
                schedulers: Vec::new(),
            }),
            max_queued: max_queued.max(1),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            active_installments: AtomicU64::new(0),
        }
    }

    /// Submit attempts (admitted + rejected): the conservation ledger's
    /// left-hand side, `submitted == completed + cancelled + rejected`
    /// after a drain.
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Jobs completed (frozen-solve or composed path).
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Jobs cancelled while queued.
    pub fn cancelled(&self) -> u64 {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Submits refused with backpressure.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Installments currently being composed/settled across all chains.
    pub fn active_installments(&self) -> u64 {
        self.active_installments.load(Ordering::Relaxed)
    }

    /// Jobs currently queued across all chains.
    pub fn queued(&self) -> u64 {
        self.inner.lock().unwrap().queued_total as u64
    }

    /// Per-chain queue rows `(tag, depth, completed)`, sorted by tag for a
    /// deterministic stats body.
    pub fn chain_rows(&self) -> Vec<(String, usize, u64)> {
        let inner = self.inner.lock().unwrap();
        let mut rows: Vec<(String, usize, u64)> = inner
            .chains
            .iter()
            .map(|(key, entry)| (chain_tag(key), entry.queue.len(), entry.completed))
            .collect();
        rows.sort();
        rows
    }

    /// Join every scheduler thread. Call after admission stopped (drain):
    /// each thread exits once its chain's queue is empty. Loops until no
    /// handle remains so a submit that raced the drain is still joined.
    pub fn join_schedulers(&self) {
        loop {
            let handles = std::mem::take(&mut self.inner.lock().unwrap().schedulers);
            if handles.is_empty() {
                return;
            }
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

/// Stable per-process, per-fleet chain tag for stats and traces (the same
/// `DefaultHasher`-with-fixed-keys construction the router's rendezvous
/// ranking relies on).
fn chain_tag(key: &ChainKey) -> String {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    format!("m{}:{:016x}", key.m, h.finish())
}

fn record_insert(inner: &mut Inner, id: u64, record: JobRecord) {
    inner.records.insert(id, record);
    while inner.records.len() > MAX_RECORDS {
        let oldest = *inner.records.keys().next().expect("non-empty");
        inner.records.remove(&oldest);
    }
}

/// Admit one job: assign an id, enqueue it on its chain, and ensure a
/// scheduler thread owns that chain. Over capacity (or mid-drain) the
/// submit is answered with a backpressure rejection instead. The submit's
/// response is sent by the scheduler at job completion — `solve`-like
/// blocking semantics, one response per framed request.
pub fn submit(
    ctx: &Arc<ServiceCtx>,
    spec: JobSpec,
    req_id: Option<i64>,
    trace: Option<u64>,
    reply: mpsc::Sender<String>,
) {
    let jobs = &ctx.jobs;
    let key = spec.chain.key.clone();
    let mut inner = jobs.inner.lock().unwrap();
    let id = NEXT_JOB_ID.fetch_add(1, Ordering::Relaxed);
    jobs.submitted.fetch_add(1, Ordering::Relaxed);
    match trace {
        Some(t) => obs::event!("job.submit", "job" => id, "m" => key.m, "trace" => t),
        None => obs::event!("job.submit", "job" => id, "m" => key.m),
    }
    let draining = ctx.draining.load(Ordering::SeqCst);
    if draining || inner.queued_total >= jobs.max_queued {
        jobs.rejected.fetch_add(1, Ordering::Relaxed);
        obs::event!("job.rejected", "job" => id);
        record_insert(
            &mut inner,
            id,
            JobRecord {
                state: JobState::Rejected,
                key,
                finish: None,
                rounds: spec.rounds,
            },
        );
        ctx.stats.on_rejected();
        let _ = reply.send(handlers::rejected_response(
            req_id,
            ctx.retry_after_ms,
            draining,
        ));
        return;
    }
    record_insert(
        &mut inner,
        id,
        JobRecord {
            state: JobState::Queued,
            key: key.clone(),
            finish: None,
            rounds: spec.rounds,
        },
    );
    inner.queued_total += 1;
    let entry = inner
        .chains
        .entry(key.clone())
        .or_insert_with(ChainEntry::new);
    entry.queue.push_back(PendingJob {
        id,
        spec,
        req_id,
        trace,
        enqueued: Instant::now(),
        reply,
    });
    let spawn_scheduler = !entry.active;
    entry.active = true;
    if spawn_scheduler {
        // Reap threads of chains that already went idle so handles don't
        // accumulate under chain churn.
        inner.schedulers.retain(|h| !h.is_finished());
        let ctx2 = Arc::clone(ctx);
        let handle = std::thread::Builder::new()
            .name(format!("dls-jobs-{}", key.m))
            .spawn(move || scheduler_loop(&ctx2, key))
            .expect("spawn job scheduler thread");
        inner.schedulers.push(handle);
    }
}

/// Cancel a queued job. Only queued jobs are cancellable — a running
/// batch's allocations are already composed and its installments priced.
/// The pending submitter receives an error response (its framed request
/// must be answered exactly once); the cancel caller gets an `ok` body.
pub fn cancel(ctx: &ServiceCtx, job_id: u64) -> Result<String, String> {
    let jobs = &ctx.jobs;
    let mut inner = jobs.inner.lock().unwrap();
    let Some(record) = inner.records.get(&job_id) else {
        return Err(format!("unknown job {job_id}"));
    };
    if record.state != JobState::Queued {
        return Err(format!(
            "job {job_id} is {} and cannot be cancelled",
            record.state.name()
        ));
    }
    let key = record.key.clone();
    let entry = inner
        .chains
        .get_mut(&key)
        .expect("queued job's chain entry exists");
    let pos = entry
        .queue
        .iter()
        .position(|p| p.id == job_id)
        .expect("queued job is in its chain queue");
    let pending = entry.queue.remove(pos).expect("position is valid");
    inner.queued_total -= 1;
    if let Some(rec) = inner.records.get_mut(&job_id) {
        rec.state = JobState::Cancelled;
    }
    jobs.cancelled.fetch_add(1, Ordering::Relaxed);
    obs::event!("job.cancelled", "job" => job_id);
    drop(inner);
    // The submitter's pending request completes with an error.
    ctx.stats.on_completed(true);
    let _ = pending.reply.send(handlers::error_response(
        pending.req_id,
        &format!("job {job_id} cancelled"),
    ));
    Ok(Value::Object(vec![
        ("job_id".into(), Value::Number(job_id as f64)),
        ("state".into(), Value::String("cancelled".into())),
    ])
    .to_json())
}

/// The `job_status` body for one job id.
pub fn status_body(ctx: &ServiceCtx, job_id: u64) -> Result<String, String> {
    let inner = ctx.jobs.inner.lock().unwrap();
    let Some(record) = inner.records.get(&job_id) else {
        return Err(format!("unknown job {job_id}"));
    };
    let depth = inner
        .chains
        .get(&record.key)
        .map(|e| e.queue.len())
        .unwrap_or(0);
    let mut fields = vec![
        ("job_id".into(), Value::Number(job_id as f64)),
        ("state".into(), Value::String(record.state.name().into())),
        ("chain".into(), Value::String(chain_tag(&record.key))),
        ("queue_depth".into(), Value::Number(depth as f64)),
    ];
    if let Some(finish) = record.finish {
        fields.push(("finish".into(), Value::Number(finish)));
    }
    if let Some(rounds) = record.rounds {
        fields.push(("rounds".into(), Value::Number(rounds as f64)));
    }
    Ok(Value::Object(fields).to_json())
}

/// One scheduler thread per active chain: drain the queue in batches,
/// compose each batch, exit when the queue is empty. The empty-queue check
/// and the `active = false` hand-off happen under the registry lock, so a
/// submit racing the exit either sees `active == true` (and this loop
/// takes its job) or spawns a fresh scheduler.
fn scheduler_loop(ctx: &Arc<ServiceCtx>, key: ChainKey) {
    loop {
        let batch: Vec<PendingJob> = {
            let mut inner = ctx.jobs.inner.lock().unwrap();
            let entry = inner
                .chains
                .get_mut(&key)
                .expect("scheduler's chain entry exists");
            if entry.queue.is_empty() {
                entry.active = false;
                // Bound idle chain retention (drop the oldest idle entries
                // once over cap; aggregate counters are unaffected).
                if inner.chains.len() > MAX_IDLE_CHAINS {
                    inner.chains.remove(&key);
                }
                return;
            }
            let batch: Vec<PendingJob> = entry.queue.drain(..).collect();
            inner.queued_total -= batch.len();
            for p in &batch {
                if let Some(rec) = inner.records.get_mut(&p.id) {
                    rec.state = JobState::Running;
                }
            }
            batch
        };
        process_batch(ctx, &batch);
    }
}

fn numbers(xs: impl IntoIterator<Item = f64>) -> Value {
    Value::Array(xs.into_iter().map(Value::Number).collect())
}

/// Mark one job finished: reply, record, meter.
fn finish_job(
    ctx: &ServiceCtx,
    pending: &PendingJob,
    response: String,
    finish: Option<f64>,
    rounds: usize,
) {
    match pending.trace {
        Some(t) => obs::event!("job.done", "job" => pending.id, "trace" => t),
        None => obs::event!("job.done", "job" => pending.id),
    }
    {
        let mut inner = ctx.jobs.inner.lock().unwrap();
        if let Some(rec) = inner.records.get_mut(&pending.id) {
            rec.state = JobState::Done;
            rec.finish = finish;
            rec.rounds = Some(rounds);
        }
        if let Some(entry) = inner.chains.get_mut(&pending.spec.chain.key) {
            entry.completed += 1;
        }
    }
    ctx.jobs.completed.fetch_add(1, Ordering::Relaxed);
    ctx.stats.on_completed(false);
    let micros = pending.enqueued.elapsed().as_secs_f64() * 1e6;
    ctx.stats
        .record_latency(pending.id as usize, Endpoint::Job, micros);
    let _ = pending.reply.send(response);
}

/// Compose, settle, and answer one drained batch (all jobs share the
/// chain; queue order is served order).
fn process_batch(ctx: &ServiceCtx, batch: &[PendingJob]) {
    let chain = &batch[0].spec.chain;
    let _span = obs::span!("svc.jobs.batch", "m" => chain.key.m, "jobs" => batch.len());

    // Frozen guarantee: a lone plain job is exactly the `solve` op.
    if batch.len() == 1 && batch[0].spec.is_plain() {
        let p = &batch[0];
        obs::event!("job.installment", "job" => p.id, "round" => 0u64);
        let (body, hit) = ctx
            .cache
            .get_or_insert(&chain.key, || handlers::solve_body(chain));
        let response = handlers::ok_response(p.req_id, Some(hit), &body);
        finish_job(ctx, p, response, None, 1);
        return;
    }

    let m = chain.key.m;
    let mut w = Vec::with_capacity(m + 1);
    w.push(chain.root_rate);
    w.extend_from_slice(&chain.bids);
    let net = LinearNetwork::from_rates(&w, &chain.link_rates);

    // The pipelining rule: auto jobs try the chain's best round count and
    // fall back to single-installment; the faster composition serves.
    // k* is cached per distinct startup value seen in the batch.
    let mut k_star: Vec<(u64, usize)> = Vec::new();
    let mut auto_k = |c: f64| -> usize {
        let bits = c.to_bits();
        if let Some(&(_, k)) = k_star.iter().find(|&&(b, _)| b == bits) {
            return k;
        }
        let k = multiround::best_rounds(&net, c, MAX_AUTO_ROUNDS).0;
        k_star.push((bits, k));
        k
    };
    let mut has_auto = false;
    let starred: Vec<PipelinedJob> = batch
        .iter()
        .map(|p| {
            let k = match p.spec.rounds {
                Some(k) => k,
                None => {
                    has_auto = true;
                    auto_k(p.spec.comm_startup)
                }
            };
            PipelinedJob::new(p.spec.load, MultiRoundConfig::new(k, p.spec.comm_startup))
        })
        .collect();
    let composed_star = multiround::compose(&net, &starred);
    let composed = if has_auto {
        let oneshot: Vec<PipelinedJob> = batch
            .iter()
            .zip(&starred)
            .map(|(p, s)| {
                let k = p.spec.rounds.unwrap_or(1);
                PipelinedJob::new(s.load, MultiRoundConfig::new(k, p.spec.comm_startup))
            })
            .collect();
        let composed_one = multiround::compose(&net, &oneshot);
        if composed_star.makespan <= composed_one.makespan {
            composed_star
        } else {
            composed_one
        }
    } else {
        composed_star
    };
    // Gauge the batch being settled: every installment of the chosen
    // composition is in flight until its job's reply is sent.
    let total_rounds: u64 = composed.jobs.iter().map(|j| j.rounds as u64).sum();
    ctx.jobs
        .active_installments
        .fetch_add(total_rounds, Ordering::Relaxed);

    for (p, job) in batch.iter().zip(&composed.jobs) {
        let load = p.spec.load;
        let share = 1.0 / job.rounds as f64;
        let mut ledger = JobLedger::new(m);
        for r in 0..job.rounds {
            match p.trace {
                Some(t) => {
                    obs::event!("job.installment", "job" => p.id, "round" => r as u64, "trace" => t)
                }
                None => obs::event!("job.installment", "job" => p.id, "round" => r as u64),
            }
            let postings: Vec<PaymentInputs> = (1..=m)
                .map(|i| {
                    let amount = job.total_alloc.alpha(i) * share * load;
                    PaymentInputs {
                        assigned_load: amount,
                        actual_load: amount,
                        actual_rate: chain.bids[i - 1],
                    }
                })
                .collect();
            ledger.post(&postings);
        }
        let settled = ledger.finalize(&net, load, 0.0);
        let total_payment: f64 = settled.iter().map(|b| b.payment).sum();
        let body = Value::Object(vec![
            ("job_id".into(), Value::Number(p.id as f64)),
            ("m".into(), Value::Number(m as f64)),
            ("load".into(), Value::Number(load)),
            ("rounds".into(), Value::Number(job.rounds as f64)),
            ("batch".into(), Value::Number(batch.len() as f64)),
            ("finish".into(), Value::Number(job.finish)),
            (
                "standalone_makespan".into(),
                Value::Number(job.standalone_makespan),
            ),
            ("batch_makespan".into(), Value::Number(composed.makespan)),
            (
                "sequential_makespan".into(),
                Value::Number(composed.sequential_makespan),
            ),
            (
                "alloc".into(),
                numbers((0..=m).map(|i| job.total_alloc.alpha(i) * load)),
            ),
            (
                "payments".into(),
                numbers(settled.iter().map(|b| b.payment)),
            ),
            (
                "utilities".into(),
                numbers(settled.iter().map(|b| b.utility)),
            ),
            ("total_payment".into(), Value::Number(total_payment)),
        ])
        .to_json();
        let response = handlers::ok_response(p.req_id, None, &body);
        // Retire this job's installments before its reply goes out, so a
        // client that submits, hears back, and reads stats sees the gauge
        // already settled.
        ctx.jobs
            .active_installments
            .fetch_sub(job.rounds as u64, Ordering::Relaxed);
        finish_job(ctx, p, response, Some(job.finish), job.rounds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant;

    fn chain() -> CanonicalChain {
        quant::canonicalize(1.0, &[0.2, 0.1, 0.7], &[2.0, 0.5, 4.0], 1e-9).unwrap()
    }

    #[test]
    fn plain_spec_detection() {
        let c = chain();
        let plain = JobSpec {
            chain: c.clone(),
            load: 1.0,
            rounds: None,
            comm_startup: 0.0,
        };
        assert!(plain.is_plain());
        assert!(JobSpec {
            rounds: Some(1),
            ..plain.clone()
        }
        .is_plain());
        assert!(!JobSpec {
            load: 2.0,
            ..plain.clone()
        }
        .is_plain());
        assert!(!JobSpec {
            rounds: Some(4),
            ..plain.clone()
        }
        .is_plain());
        assert!(!JobSpec {
            comm_startup: 0.05,
            ..plain
        }
        .is_plain());
    }

    #[test]
    fn chain_tags_are_stable_and_distinct() {
        let a = chain();
        let b = quant::canonicalize(1.0, &[0.2, 0.1, 0.7], &[2.0, 0.5, 4.1], 1e-9).unwrap();
        assert_eq!(chain_tag(&a.key), chain_tag(&a.key));
        assert_ne!(chain_tag(&a.key), chain_tag(&b.key));
        assert!(chain_tag(&a.key).starts_with("m3:"));
    }

    #[test]
    fn registry_counters_start_empty() {
        let reg = JobRegistry::new(8);
        assert_eq!(reg.submitted(), 0);
        assert_eq!(reg.completed(), 0);
        assert_eq!(reg.cancelled(), 0);
        assert_eq!(reg.rejected(), 0);
        assert_eq!(reg.queued(), 0);
        assert_eq!(reg.active_installments(), 0);
        assert!(reg.chain_rows().is_empty());
        reg.join_schedulers();
    }

    fn ctx() -> Arc<ServiceCtx> {
        Arc::new(ServiceCtx {
            cache: crate::cache::SolverCache::new(4, 64),
            stats: crate::stats::StatsRegistry::new(2),
            draining: std::sync::atomic::AtomicBool::new(false),
            default_deadline: std::time::Duration::from_secs(5),
            retry_after_ms: 25,
            allow_remote_shutdown: false,
            quantum_bits: AtomicU64::new(quant::DEFAULT_QUANTUM.to_bits()),
            obs_memory: None,
            jobs: JobRegistry::new(8),
        })
    }

    /// Stage a queued job directly — no scheduler thread, so the cancel
    /// path is exercised deterministically (over TCP the scheduler races
    /// the cancel and usually wins).
    fn stage_queued(ctx: &ServiceCtx, reply: mpsc::Sender<String>) -> u64 {
        let c = chain();
        let mut inner = ctx.jobs.inner.lock().unwrap();
        let id = NEXT_JOB_ID.fetch_add(1, Ordering::Relaxed);
        record_insert(
            &mut inner,
            id,
            JobRecord {
                state: JobState::Queued,
                key: c.key.clone(),
                finish: None,
                rounds: None,
            },
        );
        inner.queued_total += 1;
        let entry = inner
            .chains
            .entry(c.key.clone())
            .or_insert_with(ChainEntry::new);
        entry.queue.push_back(PendingJob {
            id,
            spec: JobSpec {
                chain: c,
                load: 2.0,
                rounds: None,
                comm_startup: 0.0,
            },
            req_id: Some(9),
            trace: None,
            enqueued: Instant::now(),
            reply,
        });
        id
    }

    #[test]
    fn cancel_removes_a_queued_job_and_answers_the_submitter() {
        let ctx = ctx();
        let (tx, rx) = mpsc::channel();
        let id = stage_queued(&ctx, tx);

        let body = cancel(&ctx, id).expect("queued job must cancel");
        assert!(body.contains("\"state\":\"cancelled\""), "{body}");
        // The submitter's pending request was answered exactly once, as an
        // error carrying its correlation id.
        let submitter = rx.recv().expect("submitter reply");
        assert!(submitter.contains("\"status\":\"error\""), "{submitter}");
        assert!(submitter.contains("\"id\":9"), "{submitter}");
        assert_eq!(ctx.jobs.cancelled(), 1);
        assert_eq!(ctx.jobs.queued(), 0);
        // Terminal states refuse a second cancel; unknown ids error.
        assert!(cancel(&ctx, id).is_err());
        assert!(cancel(&ctx, 999).is_err());
        // The record survives for status probes.
        let status = status_body(&ctx, id).unwrap();
        assert!(status.contains("\"state\":\"cancelled\""), "{status}");
    }

    #[test]
    fn record_map_stays_bounded() {
        let reg = JobRegistry::new(8);
        let key = chain().key;
        {
            let mut inner = reg.inner.lock().unwrap();
            for id in 0..(MAX_RECORDS as u64 + 100) {
                record_insert(
                    &mut inner,
                    id,
                    JobRecord {
                        state: JobState::Done,
                        key: key.clone(),
                        finish: None,
                        rounds: None,
                    },
                );
            }
            assert_eq!(inner.records.len(), MAX_RECORDS);
            // Oldest ids were evicted first.
            assert!(inner.records.contains_key(&(MAX_RECORDS as u64 + 99)));
            assert!(!inner.records.contains_key(&0));
        }
    }
}
