//! # `svc` — the online DLS-LBL scheduling service
//!
//! Every other entry point in this workspace is a batch experiment; `svc`
//! is the serving substrate the ROADMAP's north star asks for: a
//! zero-dependency (std-only, like `minijson` and `obs`) TCP server that
//! accepts scheduling requests online, runs the DLS-LBL mechanism, and
//! returns allocations and payments.
//!
//! Wire protocol: newline-delimited JSON over TCP. Ops:
//!
//! | op         | handled by        | response |
//! |------------|-------------------|----------|
//! | `solve`    | worker pool, cached | allocation, payments, utilities, makespan |
//! | `ft_run`   | worker pool       | fault-injected run report (`protocol::ft_runner`) |
//! | `submit_job` | per-chain scheduler ([`jobs`]) | job report at completion (pipelined multiround installments, carry-over settlement) |
//! | `job_status` | inline          | job lifecycle state + chain queue depth |
//! | `cancel_job` | inline          | cancels a still-queued job (submitter gets an error response) |
//! | `health`   | inline            | state, uptime, queue depth |
//! | `stats`    | inline            | counters, cache stats, per-endpoint latency percentiles, job queues |
//! | `metrics`  | inline            | stable JSON + Prometheus text of every counter/histogram |
//! | `shutdown` | inline            | `draining`; begins the graceful drain |
//! | `reconfigure` | inline         | swaps the quantum, invalidating the cache (loopback-gated) |
//!
//! The pieces: [`quant`] canonicalizes requests to quantized chains (the
//! cache identity), [`cache`] is the sharded LRU solver cache, [`queue`]
//! the bounded admission queue, [`pool`] the workers, [`handlers`] the
//! parse/execute layer, [`server`] the TCP front end with graceful drain,
//! [`client`] a blocking client. `bin/dls-serve` is the binary;
//! `bench/src/bin/dls-bench-serve` drives it closed-loop (experiment E23).
//!
//! ### Resilience layer (DESIGN.md §11)
//!
//! On top of the single server sit four cooperating pieces:
//!
//! * [`supervisor`] — spawns a fleet of shard servers (in-process or
//!   child processes), monitors them, and restarts the dead with bounded
//!   exponential backoff.
//! * [`router`] — a front tier speaking the same NDJSON protocol; it
//!   rendezvous-hashes each request's canonical chain key across the live
//!   shards and relays shard bytes verbatim, failing over when a shard
//!   dies. Cache keys are canonical, so failover is correct by
//!   construction: a cold shard re-solves to bit-identical bytes.
//! * [`resilient_client`] — a retrying client with exponential backoff,
//!   seeded jitter, `retry_after_ms` honoring, and a circuit breaker.
//! * [`chaos`] — a seeded fault-injecting TCP proxy (resets, delays,
//!   partial writes, corruption) for deterministic failure drills;
//!   experiment E25 (`exp_serve_chaos`) sweeps it.
//!
//! ### Fleet telemetry (DESIGN.md §12)
//!
//! [`telemetry`] threads an optional per-request trace id through every
//! hop (router accept → failover attempts → shard queue → cache → solve,
//! plus client retries, breaker transitions and supervisor restarts) and
//! renders the `metrics` op's Prometheus text. Experiment E26
//! (`exp_fleet_telemetry`) proves tracing never changes response bytes;
//! `dls-trace --fleet` joins the per-process JSONL files by trace id and
//! checks per-request conservation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod chaos;
pub mod client;
pub mod handlers;
pub mod jobs;
pub mod pool;
pub mod quant;
pub mod queue;
pub mod resilient_client;
pub mod router;
pub mod server;
pub mod stats;
pub mod supervisor;
pub mod telemetry;

pub use cache::SolverCache;
pub use chaos::{ChaosConfig, ChaosProxy, FaultKind};
pub use client::{Client, ClientConfig};
pub use jobs::{JobRegistry, JobSpec};
pub use quant::{canonicalize, CanonicalChain, ChainKey, DEFAULT_QUANTUM, MAX_TICKS};
pub use queue::{BoundedQueue, PushError};
pub use resilient_client::{CallError, CallOutcome, ResilientClient, RetryPolicy};
pub use router::{Router, RouterConfig, RouterHandle, ShardDirectory};
pub use server::{serve, ServerConfig, ServerHandle};
pub use stats::{Endpoint, StatsRegistry, StatsSnapshot, LATENCY_SAMPLE_CAP};
pub use supervisor::{ShardRuntime, Supervisor, SupervisorConfig};
