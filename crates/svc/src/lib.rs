//! # `svc` — the online DLS-LBL scheduling service
//!
//! Every other entry point in this workspace is a batch experiment; `svc`
//! is the serving substrate the ROADMAP's north star asks for: a
//! zero-dependency (std-only, like `minijson` and `obs`) TCP server that
//! accepts scheduling requests online, runs the DLS-LBL mechanism, and
//! returns allocations and payments.
//!
//! Wire protocol: newline-delimited JSON over TCP. Ops:
//!
//! | op         | handled by        | response |
//! |------------|-------------------|----------|
//! | `solve`    | worker pool, cached | allocation, payments, utilities, makespan |
//! | `ft_run`   | worker pool       | fault-injected run report (`protocol::ft_runner`) |
//! | `health`   | inline            | state, uptime, queue depth |
//! | `stats`    | inline            | counters, cache stats, per-endpoint latency percentiles |
//! | `shutdown` | inline            | `draining`; begins the graceful drain |
//!
//! The pieces: [`quant`] canonicalizes requests to quantized chains (the
//! cache identity), [`cache`] is the sharded LRU solver cache, [`queue`]
//! the bounded admission queue, [`pool`] the workers, [`handlers`] the
//! parse/execute layer, [`server`] the TCP front end with graceful drain,
//! [`client`] a blocking client. `bin/dls-serve` is the binary;
//! `bench/src/bin/dls-bench-serve` drives it closed-loop (experiment E23).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod handlers;
pub mod pool;
pub mod quant;
pub mod queue;
pub mod server;
pub mod stats;

pub use cache::SolverCache;
pub use client::Client;
pub use quant::{canonicalize, CanonicalChain, ChainKey, DEFAULT_QUANTUM, MAX_TICKS};
pub use queue::{BoundedQueue, PushError};
pub use server::{serve, ServerConfig, ServerHandle};
pub use stats::{Endpoint, StatsRegistry, StatsSnapshot, LATENCY_SAMPLE_CAP};
