//! Canonical quantized chain keys — the solver cache's notion of request
//! identity.
//!
//! Two solve requests should share a cache entry exactly when they describe
//! the same chain *after quantization*. The key is the vector of integer
//! ticks `round(rate / quantum)` over `(w_0, z_1…z_m, b_1…b_m)`; the
//! canonical rates handed to the solver are those ticks scaled back by the
//! quantum. Because the solver only ever sees canonical rates, a cache hit
//! is **bit-identical** to a cold solve by construction: the cached bytes
//! are a pure function of the key, and every request mapping to the key
//! would have produced the same bytes.
//!
//! Aliasing bound: requests that land on the same key differ per rate by
//! less than one quantum (ticks are rounds, so by at most `quantum / 2`
//! from the canonical rate). With the default quantum `1e-9` and the
//! workload rate ranges (`w, z ∈ [0.01, 10]`), the optimal allocation is
//! Lipschitz with a modest constant, so aliased chains have optimal
//! allocations within a few `1e-8` of each other — far below the `1e-6`
//! tolerance the service advertises (property-tested in
//! `tests/cache_props.rs`).

/// Default quantization step for rates (unit processing / link times).
pub const DEFAULT_QUANTUM: f64 = 1e-9;

/// Largest admissible tick count: `2^53`, the bound below which every
/// integer is exactly representable as an `f64`. Rates above
/// `MAX_TICKS × quantum` are rejected rather than quantized: past this
/// point `rate / quantum` loses integer precision and the `as i64` cast
/// would eventually saturate, aliasing materially different chains onto
/// one key. At the default quantum `1e-9` this caps admissible rates at
/// ~9.0e6 — far above any workload rate this service models.
pub const MAX_TICKS: i64 = 1 << 53;

/// A canonical, hashable identity for a solve request: the chain length
/// plus the quantized ticks of every rate in a fixed order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ChainKey {
    /// Number of strategic processors `m`.
    pub m: usize,
    /// Ticks of `(w_0, z_1 … z_m, b_1 … b_m)`, in that order.
    pub ticks: Vec<i64>,
}

/// A solve request after canonicalization: the key and the exact rates the
/// solver must use (ticks × quantum).
#[derive(Debug, Clone, PartialEq)]
pub struct CanonicalChain {
    /// Cache identity.
    pub key: ChainKey,
    /// Canonical root rate `w_0`.
    pub root_rate: f64,
    /// Canonical link rates `z_1 … z_m`.
    pub link_rates: Vec<f64>,
    /// Canonical bids `b_1 … b_m`.
    pub bids: Vec<f64>,
}

/// Quantize one rate to its tick count. Returns `None` when the tick
/// would fall outside `1..=MAX_TICKS`: non-finite or non-positive rates,
/// rates below half a quantum (they would alias with 0), and rates large
/// enough that the `f64 → i64` conversion would lose precision or
/// saturate (see [`MAX_TICKS`]).
#[inline]
pub fn tick(rate: f64, quantum: f64) -> Option<i64> {
    let t = (rate / quantum).round();
    if t.is_finite() && t >= 1.0 && t <= MAX_TICKS as f64 {
        Some(t as i64)
    } else {
        None
    }
}

/// Canonicalize a solve request. Returns `None` when any rate is
/// non-finite, non-positive, quantizes to zero ticks (a rate smaller
/// than half a quantum cannot be represented and would alias with 0), or
/// exceeds `MAX_TICKS × quantum` (the tick computation would saturate
/// and alias distinct chains).
pub fn canonicalize(
    root_rate: f64,
    link_rates: &[f64],
    bids: &[f64],
    quantum: f64,
) -> Option<CanonicalChain> {
    if link_rates.len() != bids.len() || bids.is_empty() {
        return None;
    }
    let m = bids.len();
    let mut ticks = Vec::with_capacity(1 + 2 * m);
    let mut quantized = |r: f64| -> Option<f64> {
        if !r.is_finite() || r <= 0.0 || r > 1e12 {
            return None;
        }
        let t = tick(r, quantum)?;
        ticks.push(t);
        Some(t as f64 * quantum)
    };
    let root = quantized(root_rate)?;
    let links: Vec<f64> = link_rates
        .iter()
        .map(|&z| quantized(z))
        .collect::<Option<_>>()?;
    let bid_rates: Vec<f64> = bids.iter().map(|&b| quantized(b)).collect::<Option<_>>()?;
    Some(CanonicalChain {
        key: ChainKey { m, ticks },
        root_rate: root,
        link_rates: links,
        bids: bid_rates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_for_sub_quantum_perturbations() {
        let a = canonicalize(1.0, &[0.2, 0.3], &[2.0, 0.5], 1e-9).unwrap();
        let b = canonicalize(1.0 + 2e-10, &[0.2 - 3e-10, 0.3], &[2.0, 0.5 + 1e-10], 1e-9).unwrap();
        assert_eq!(a.key, b.key);
        assert_eq!(a.root_rate, b.root_rate);
        assert_eq!(a.bids, b.bids);
    }

    #[test]
    fn different_key_beyond_one_quantum() {
        let a = canonicalize(1.0, &[0.2], &[2.0], 1e-9).unwrap();
        let b = canonicalize(1.0, &[0.2], &[2.0 + 2e-9], 1e-9).unwrap();
        assert_ne!(a.key, b.key);
    }

    #[test]
    fn rejects_degenerate_rates() {
        assert!(canonicalize(0.0, &[0.2], &[2.0], 1e-9).is_none());
        assert!(canonicalize(1.0, &[f64::NAN], &[2.0], 1e-9).is_none());
        assert!(canonicalize(1.0, &[0.2], &[-1.0], 1e-9).is_none());
        assert!(canonicalize(1.0, &[0.2], &[1e-12], 1e-9).is_none());
        assert!(canonicalize(1.0, &[0.2, 0.3], &[2.0], 1e-9).is_none());
        assert!(canonicalize(1.0, &[], &[], 1e-9).is_none());
    }

    #[test]
    fn rejects_rates_that_would_saturate_ticks() {
        // 2^53 × 1e-9 ≈ 9.007e6: anything above must be rejected, not
        // silently saturated onto a shared key.
        assert!(canonicalize(1e7, &[0.2], &[2.0], 1e-9).is_none());
        assert!(canonicalize(1.0, &[9.3e9], &[2.0], 1e-9).is_none());
        assert!(canonicalize(1.0, &[0.2], &[1e12], 1e-9).is_none());
        // Distinct over-bound rates may not alias: both are rejected.
        assert!(canonicalize(9.3e9, &[0.2], &[2.0], 1e-9).is_none());
        assert!(canonicalize(1e10, &[0.2], &[2.0], 1e-9).is_none());
        // Just inside the bound still canonicalizes (ticks within an ulp
        // of 9e15; the canonical rate, not the raw input, defines the key).
        let c = canonicalize(9.0e6, &[0.2], &[2.0], 1e-9).unwrap();
        assert!((c.key.ticks[0] - 9_000_000_000_000_000).abs() <= 1);
        // A coarser quantum admits large rates again (bound scales).
        assert!(canonicalize(1e10, &[0.2], &[2.0], 1e-3).is_some());
    }

    #[test]
    fn tick_is_checked_at_the_bounds() {
        assert_eq!(tick(1.0, 1e-9), Some(1_000_000_000));
        assert_eq!(tick(f64::INFINITY, 1e-9), None);
        assert_eq!(tick(-1.0, 1e-9), None);
        assert_eq!(tick(1e-12, 1e-9), None);
        let near_bound = tick(9.0e6, 1e-9).unwrap();
        assert!((near_bound - 9_000_000_000_000_000).abs() <= 1);
        assert_eq!(tick((MAX_TICKS as f64) * 4.0 * 1e-9, 1e-9), None);
        assert_eq!(tick(f64::MAX, 1e-9), None);
    }

    #[test]
    fn canonical_rates_are_tick_multiples() {
        let c = canonicalize(1.2345678901, &[0.2], &[2.0], 1e-6).unwrap();
        assert_eq!(c.key.ticks[0], 1234568);
        assert_eq!(c.root_rate, 1234568.0 * 1e-6);
    }
}
