//! `dls-serve` — the DLS-LBL scheduling server.
//!
//! ```text
//! dls-serve [--addr 127.0.0.1:4500] [--workers N] [--queue N]
//!           [--max-conns N] [--deadline-ms N] [--cache-ttl-ms N]
//!           [--job-queue-capacity N] [--fleet N]
//!           [--allow-remote-shutdown] [--self-test]
//! ```
//!
//! The `shutdown` op is honored from loopback peers only unless
//! `--allow-remote-shutdown` is given, so binding a non-loopback `--addr`
//! does not hand remote clients control of the server lifecycle.
//!
//! `--fleet N` starts the resilient topology instead of a single server:
//! `N` supervised in-process shard servers (restarted on death, with
//! backoff) behind a failover router bound to `--addr`. Clients speak the
//! same protocol to the router; a `shutdown` op drains the router, then
//! the fleet, and the exit ledger is the fleet-wide sum.
//!
//! Speaks newline-delimited JSON (see the `svc` crate docs for the ops).
//! With `DLS_TRACE=path.jsonl` set, streams `obs` records to that file
//! (flushed on drain); otherwise an in-memory sink feeds the `stats`
//! endpoint's `obs` mirror.
//!
//! `--self-test` starts the server on an ephemeral port, runs a scripted
//! request batch against it (health, cold + cached solves, a fault run, a
//! malformed line, stats, shutdown), verifies the responses and the drain
//! ledger, and exits non-zero on any mismatch — the CI smoke test.

use std::sync::Arc;
use svc::{serve, Client, Router, RouterConfig, ServerConfig, Supervisor, SupervisorConfig};

fn parse_args() -> (ServerConfig, bool, usize) {
    let mut config = ServerConfig {
        addr: "127.0.0.1:4500".into(),
        ..ServerConfig::default()
    };
    let mut self_test = false;
    let mut fleet = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = take("--addr"),
            "--workers" => config.workers = take("--workers").parse().expect("--workers"),
            "--queue" => config.queue_capacity = take("--queue").parse().expect("--queue"),
            "--max-conns" => config.max_conns = take("--max-conns").parse().expect("--max-conns"),
            "--deadline-ms" => {
                config.default_deadline_ms = take("--deadline-ms").parse().expect("--deadline-ms")
            }
            "--cache-ttl-ms" => {
                config.cache_ttl_ms = Some(take("--cache-ttl-ms").parse().expect("--cache-ttl-ms"))
            }
            "--job-queue-capacity" => {
                config.job_queue_capacity = take("--job-queue-capacity")
                    .parse()
                    .expect("--job-queue-capacity")
            }
            "--fleet" => fleet = take("--fleet").parse().expect("--fleet"),
            "--allow-remote-shutdown" => config.allow_remote_shutdown = true,
            "--self-test" => self_test = true,
            "--help" | "-h" => {
                println!(
                    "dls-serve [--addr HOST:PORT] [--workers N] [--queue N] \
                     [--max-conns N] [--deadline-ms N] [--cache-ttl-ms N] \
                     [--job-queue-capacity N] [--fleet N] \
                     [--allow-remote-shutdown] [--self-test]\n\n\
                     env:\n  DLS_TRACE=path.jsonl  stream obs spans/events/counters \
                     to that file\n                        (inspect with dls-trace; \
                     join a fleet's files\n                        with dls-trace --fleet)"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    (config, self_test, fleet)
}

fn main() {
    let (mut config, self_test, fleet) = parse_args();
    let traced = obs::init_from_env();
    if traced.is_none() {
        let sink = Arc::new(obs::MemorySink::new());
        obs::install(sink.clone());
        config.obs_memory = Some(sink);
    }
    if self_test {
        config.addr = "127.0.0.1:0".into();
        config.workers = 2;
        match run_self_test(config) {
            Ok(()) => println!("self-test: OK"),
            Err(e) => {
                eprintln!("self-test: FAILED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if fleet > 0 {
        run_fleet(config, fleet, traced);
        return;
    }
    let handle = serve(config).expect("bind server");
    println!("dls-serve listening on {}", handle.addr());
    if let Some(path) = traced {
        println!("tracing to {path}");
    }
    // The accept loop owns the process until a client sends `shutdown`.
    let snapshot = handle.join();
    println!(
        "drained: received={} completed={} rejected={} timeouts={} conserved={}",
        snapshot.received,
        snapshot.completed,
        snapshot.rejected,
        snapshot.timeouts,
        snapshot.conserved()
    );
    if !snapshot.conserved() {
        std::process::exit(1);
    }
}

/// The resilient topology: `fleet` supervised in-process shards behind a
/// failover router on `config.addr`. Blocks until the router drains.
fn run_fleet(config: ServerConfig, fleet: usize, traced: Option<String>) {
    let router_addr = config.addr.clone();
    let allow_remote = config.allow_remote_shutdown;
    let supervisor = Supervisor::start(SupervisorConfig {
        shards: fleet,
        server: ServerConfig {
            // Shards trust only their local supervisor/router.
            allow_remote_shutdown: false,
            ..config
        },
        ..SupervisorConfig::default()
    })
    .expect("start shard fleet");
    let router = Router::spawn(
        supervisor.directory(),
        RouterConfig {
            addr: router_addr,
            allow_remote_shutdown: allow_remote,
            ..RouterConfig::default()
        },
    )
    .expect("bind router");
    println!(
        "dls-serve listening on {} (fleet of {fleet})",
        router.addr()
    );
    if let Some(path) = traced {
        println!("tracing to {path}");
    }
    let router_stats = router.join();
    let snapshot = supervisor.shutdown();
    println!(
        "router drained: received={} forwarded={} failovers={} unavailable={}",
        router_stats.received,
        router_stats.forwarded_ok,
        router_stats.failovers,
        router_stats.unavailable
    );
    println!(
        "fleet drained: received={} completed={} rejected={} timeouts={} conserved={}",
        snapshot.received,
        snapshot.completed,
        snapshot.rejected,
        snapshot.timeouts,
        snapshot.conserved()
    );
    if !snapshot.conserved() {
        std::process::exit(1);
    }
}

fn run_self_test(config: ServerConfig) -> Result<(), String> {
    let handle = serve(config).map_err(|e| e.to_string())?;
    let addr = handle.addr();
    let mut c = Client::connect(addr).map_err(|e| e.to_string())?;
    let check = |v: &minijson::Value, what: &str, want: &str| -> Result<(), String> {
        let got = v.get("status").and_then(|s| s.as_str()).unwrap_or("?");
        if got == want {
            Ok(())
        } else {
            Err(format!("{what}: status {got:?}, expected {want:?}"))
        }
    };

    let health = c
        .call(r#"{"op":"health","id":1}"#)
        .map_err(|e| e.to_string())?;
    check(&health, "health", "ok")?;

    let solve =
        r#"{"op":"solve","id":2,"root_rate":1.0,"links":[0.2,0.1,0.7],"bids":[2.0,0.5,4.0]}"#;
    let cold = c.call(solve).map_err(|e| e.to_string())?;
    check(&cold, "cold solve", "ok")?;
    if cold.get("cached").and_then(|x| x.as_bool()) != Some(false) {
        return Err("cold solve reported cached=true".into());
    }
    let warm = c.call(solve).map_err(|e| e.to_string())?;
    check(&warm, "warm solve", "ok")?;
    if warm.get("cached").and_then(|x| x.as_bool()) != Some(true) {
        return Err("warm solve missed the cache".into());
    }
    let (a, b) = (cold.get("result"), warm.get("result"));
    if a.map(|v| v.to_json()) != b.map(|v| v.to_json()) {
        return Err("cache hit not bit-identical to cold solve".into());
    }

    let ft = c
        .call(r#"{"op":"ft_run","id":3,"root_rate":1.0,"rates":[2.0,0.5,4.0],"links":[0.2,0.1,0.7],"seed":7,"crash":{"node":2,"phase":3,"progress":0.5}}"#)
        .map_err(|e| e.to_string())?;
    check(&ft, "ft_run", "ok")?;
    if ft
        .get("result")
        .and_then(|r| r.get("load_conserved"))
        .and_then(|x| x.as_bool())
        != Some(true)
    {
        return Err("ft_run did not conserve load".into());
    }

    let bad = c.call("this is not json").map_err(|e| e.to_string())?;
    check(&bad, "malformed line", "error")?;

    let stats = c
        .call(r#"{"op":"stats","id":4}"#)
        .map_err(|e| e.to_string())?;
    check(&stats, "stats", "ok")?;
    let hits = stats
        .get("result")
        .and_then(|r| r.get("cache"))
        .and_then(|cache| cache.get("hits"))
        .and_then(|h| h.as_u64());
    if hits != Some(1) {
        return Err(format!("stats cache.hits = {hits:?}, expected 1"));
    }

    let bye = c
        .call(r#"{"op":"shutdown","id":5}"#)
        .map_err(|e| e.to_string())?;
    check(&bye, "shutdown", "ok")?;
    drop(c);
    let snapshot = handle.join();
    if !snapshot.conserved() {
        return Err(format!(
            "drain ledger broken: received={} completed={} rejected={}",
            snapshot.received, snapshot.completed, snapshot.rejected
        ));
    }
    if snapshot.received != 7 {
        return Err(format!("expected 7 requests, saw {}", snapshot.received));
    }
    println!(
        "self-test: {} requests, {} completed, {} rejected, drain conserved",
        snapshot.received, snapshot.completed, snapshot.rejected
    );
    Ok(())
}
