//! Resilience end-to-end tests over real loopback TCP: client timeouts
//! against silent servers, router bit-identity, shard-death failover
//! (graceful and SIGKILL), rejection propagation with exact
//! no-double-count accounting, and a kill-mid-burst drill under the
//! chaos proxy.

use minijson::Value;
use std::net::TcpListener;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use svc::chaos::{ChaosConfig, ChaosProxy};
use svc::resilient_client::{ResilientClient, RetryPolicy};
use svc::supervisor::ShardRuntime;
use svc::{
    canonicalize, serve, Client, ClientConfig, Router, RouterConfig, RouterHandle, ServerConfig,
    Supervisor, SupervisorConfig, DEFAULT_QUANTUM,
};
use workloads::requests;

fn status(v: &Value) -> &str {
    v.get("status").and_then(Value::as_str).unwrap_or("?")
}

/// The exact `"result":…` suffix a fresh solve of this chain serializes —
/// the bit-identity oracle used throughout this suite.
fn expected_result_suffix(root: f64, links: &[f64], bids: &[f64]) -> String {
    let chain = canonicalize(root, links, bids, DEFAULT_QUANTUM).expect("valid chain");
    format!("\"result\":{}}}", svc::handlers::solve_body(&chain))
}

/// A small pool of distinct chains that spread across shards.
fn chain_set(n: usize) -> Vec<(f64, Vec<f64>, Vec<f64>)> {
    (0..n)
        .map(|i| {
            let s = 1.0 + 0.21 * i as f64;
            (s, vec![0.2 * s, 0.1, 0.7], vec![2.0, 0.5 + 0.3 * s, 4.0])
        })
        .collect()
}

fn fleet(shards: usize, server: ServerConfig, router: RouterConfig) -> (Supervisor, RouterHandle) {
    let sup = Supervisor::start(SupervisorConfig {
        shards,
        server,
        monitor_interval: Duration::from_millis(20),
        backoff_base: Duration::from_millis(20),
        backoff_max: Duration::from_millis(200),
        runtime: ShardRuntime::InProcess,
    })
    .expect("start fleet");
    let router = Router::spawn(sup.directory(), router).expect("bind router");
    (sup, router)
}

// ---------------------------------------------------------------- timeouts

/// Satellite (a): a server that accepts and then never replies must cost
/// the client its read timeout, not an eternal hang.
#[test]
fn client_times_out_against_a_silent_server() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    // Keep the accepted sockets alive (and silent) for the test's life.
    let silent = std::thread::spawn(move || {
        let mut held = Vec::new();
        while let Ok((s, _)) = listener.accept() {
            held.push(s);
            if held.len() >= 2 {
                std::thread::sleep(Duration::from_secs(3));
                return;
            }
        }
    });
    let timeout = Duration::from_millis(300);
    let mut c = Client::connect_with(addr, ClientConfig::fast(timeout)).expect("connect");
    let started = Instant::now();
    let err = c
        .call_raw(r#"{"op":"health"}"#)
        .expect_err("silent server must not produce a response");
    let elapsed = started.elapsed();
    assert_eq!(err.kind(), std::io::ErrorKind::TimedOut, "{err}");
    assert!(
        elapsed >= timeout && elapsed < timeout + Duration::from_secs(1),
        "timeout fired at {elapsed:?}, configured {timeout:?}"
    );
    // The resilient client wraps the same failure into a bounded retry
    // loop and also terminates.
    let mut rc = ResilientClient::new(
        addr.to_string(),
        RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            client: ClientConfig::fast(timeout),
            ..RetryPolicy::default()
        },
    );
    assert!(rc.call(r#"{"op":"health"}"#).is_err());
    drop(silent);
}

// ------------------------------------------------------------ bit-identity

/// Tentpole invariant: the router is byte-transparent. The same request
/// sequence against a routed fleet and against a single server produces
/// identical response lines, byte for byte.
#[test]
fn routed_fleet_matches_single_server_byte_for_byte() {
    let (sup, router) = fleet(
        3,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
        RouterConfig {
            health_interval: Duration::ZERO,
            ..RouterConfig::default()
        },
    );
    let single = serve(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("start single server");

    // Each chain twice (cold then warm), interleaved, plus an invalid
    // chain and a malformed line — error bytes must match too.
    let mut lines: Vec<String> = Vec::new();
    for round in 0..2 {
        for (i, (root, links, bids)) in chain_set(6).iter().enumerate() {
            let id = (round * 100 + i) as i64;
            lines.push(requests::solve_line(id, *root, links, bids));
        }
    }
    lines.push(r#"{"op":"solve","id":900,"root_rate":-1.0,"links":[0.2],"bids":[2.0]}"#.into());
    lines.push("this is not json".into());

    let drive = |addr: std::net::SocketAddr| -> Vec<String> {
        let mut c = Client::connect(addr).expect("connect");
        lines.iter().map(|l| c.call_raw(l).expect("call")).collect()
    };
    let via_router = drive(router.addr());
    let via_single = drive(single.addr());
    for (i, (r, s)) in via_router.iter().zip(&via_single).enumerate() {
        assert_eq!(r, s, "response {i} diverged for request {:?}", lines[i]);
    }
    // Warm rounds really were warm on both paths (same cache behavior).
    assert!(via_router[6].contains("\"cached\":true"));

    router.shutdown();
    router.join();
    let total = sup.shutdown();
    assert!(total.conserved(), "fleet ledger: {total:?}");
    single.shutdown();
    single.join();
}

// ---------------------------------------------------------------- failover

/// Kill a shard (gracefully; the SIGKILL variant is below) and the same
/// keys must keep answering through the router, bit-identical to a fresh
/// solve; the router records the failovers.
#[test]
fn failover_after_shard_death_is_bit_identical() {
    let (sup, router) = fleet(
        3,
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
        RouterConfig {
            health_interval: Duration::ZERO,
            ..RouterConfig::default()
        },
    );
    let chains = chain_set(8);
    let mut c = Client::connect(router.addr()).expect("connect");
    let before: Vec<String> = chains
        .iter()
        .enumerate()
        .map(|(i, (root, links, bids))| {
            c.call_raw(&requests::solve_line(i as i64, *root, links, bids))
                .expect("pre-kill call")
        })
        .collect();

    // Kill one shard for good; its keys must move, the rest stay put.
    sup.kill_shard(1, false);
    // The kill marked the slot down, which would let the router sidestep
    // it without ever probing. Re-mark it healthy to simulate *stale*
    // health state: the router must now discover the death on its own
    // (dead cached conn / refused connect) and fail over mid-forward.
    std::thread::sleep(Duration::from_millis(100)); // let the drain land
    sup.directory().mark_healthy(1);

    let after: Vec<String> = chains
        .iter()
        .enumerate()
        .map(|(i, (root, links, bids))| {
            c.call_raw(&requests::solve_line(i as i64, *root, links, bids))
                .expect("post-kill call")
        })
        .collect();
    for (i, (b, a)) in before.iter().zip(&after).enumerate() {
        assert!(
            a.contains("\"status\":\"ok\""),
            "post-kill response {i}: {a}"
        );
        let (root, links, bids) = &chains[i];
        let suffix = expected_result_suffix(*root, links, bids);
        assert!(
            a.ends_with(&suffix) && b.ends_with(&suffix),
            "request {i} not bit-identical to a fresh solve\n before: {b}\n after: {a}"
        );
    }
    let stats = router.stats();
    assert!(
        stats.failovers > 0,
        "killing 1 of 3 shards must move some keys: {stats:?}"
    );
    assert_eq!(stats.unavailable, 0, "two shards still live: {stats:?}");

    router.shutdown();
    router.join();
    let total = sup.shutdown();
    assert!(total.conserved(), "fleet ledger: {total:?}");
}

/// The process runtime: a real `dls-serve` child is SIGKILLed mid-life;
/// the supervisor restarts it (new port, bumped generation) and the
/// router routes to the replacement.
#[test]
fn sigkilled_process_shard_is_restarted_and_rejoins() {
    let binary = std::path::PathBuf::from(env!("CARGO_BIN_EXE_dls-serve"));
    let sup = Supervisor::start(SupervisorConfig {
        shards: 1,
        runtime: ShardRuntime::Process {
            binary,
            extra_args: vec![],
        },
        server: ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
        monitor_interval: Duration::from_millis(20),
        backoff_base: Duration::from_millis(20),
        backoff_max: Duration::from_millis(200),
    })
    .expect("start process fleet");
    let dir = sup.directory();
    let router = Router::spawn(
        dir.clone(),
        RouterConfig {
            health_interval: Duration::from_millis(50),
            ..RouterConfig::default()
        },
    )
    .expect("bind router");

    let (root, links, bids) = (1.0, vec![0.2, 0.1], vec![2.0, 0.5]);
    let suffix = expected_result_suffix(root, &links, &bids);
    let policy = RetryPolicy {
        max_attempts: 10,
        base_backoff: Duration::from_millis(20),
        max_backoff: Duration::from_millis(200),
        client: ClientConfig::fast(Duration::from_millis(500)),
        seed: 5,
        ..RetryPolicy::default()
    };
    let mut rc = ResilientClient::new(router.addr().to_string(), policy);
    let out = rc
        .call(&requests::solve_line(1, root, &links, &bids))
        .expect("pre-kill solve");
    assert!(out.raw.ends_with(&suffix), "{}", out.raw);

    let gen_before = dir.generation(0);
    sup.kill_shard(0, true); // SIGKILL; supervisor must bring it back
    let deadline = Instant::now() + Duration::from_secs(10);
    while dir.generation(0) == gen_before && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(dir.generation(0) > gen_before, "shard never restarted");
    assert_eq!(sup.restarts(), 1);

    // Same key, fresh shard, same bytes (cold again — the cache died).
    let out = rc
        .call(&requests::solve_line(2, root, &links, &bids))
        .expect("post-restart solve");
    assert_eq!(status(&out.value), "ok");
    assert!(out.raw.ends_with(&suffix), "{}", out.raw);
    assert!(out.raw.contains("\"cached\":false"), "{}", out.raw);

    router.shutdown();
    router.join();
    sup.shutdown();
}

// ------------------------------------------------------------- accounting

/// Satellite (f): shard rejections propagate through the router with
/// `retry_after_ms` unchanged, and the router never re-sends a
/// backpressure-rejected request — so the sum of shard `received`
/// counters equals the router's forwarding attempts exactly.
#[test]
fn rejections_propagate_unchanged_and_are_never_double_counted() {
    let (sup, router) = fleet(
        2,
        ServerConfig {
            workers: 1,
            queue_capacity: 2,
            retry_after_ms: 13,
            ..ServerConfig::default()
        },
        RouterConfig {
            // No prober: every shard `received` must come from forwarding.
            health_interval: Duration::ZERO,
            ..RouterConfig::default()
        },
    );
    let addr = router.addr();

    const CONNS: usize = 6;
    const PER_CONN: usize = 30;
    let rejected_seen = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for conn in 0..CONNS {
            let rejected_seen = &rejected_seen;
            scope.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                for i in 0..PER_CONN {
                    let id = (conn * PER_CONN + i) as i64;
                    // ft_run is uncached and slow enough to overflow a
                    // two-slot queue under six concurrent connections.
                    let line = requests::ft_line(
                        id,
                        1.0,
                        &[2.0, 0.5, 4.0, 1.5],
                        &[0.2, 0.1, 0.7, 0.3],
                        id as u64,
                        Some((1 + (id as usize) % 4, 3, 0.5)),
                    );
                    let raw = c.call_raw(&line).expect("call");
                    let v = Value::parse(&raw).expect("parse");
                    match status(&v) {
                        "ok" | "timeout" => {}
                        "rejected" => {
                            rejected_seen.fetch_add(1, Ordering::Relaxed);
                            assert_eq!(
                                v.get("reason").and_then(Value::as_str),
                                Some("backpressure"),
                                "{raw}"
                            );
                            assert_eq!(
                                v.get("retry_after_ms").and_then(Value::as_u64),
                                Some(13),
                                "shard retry hint must survive the router hop: {raw}"
                            );
                        }
                        other => panic!("unexpected status {other}: {raw}"),
                    }
                }
            });
        }
    });

    let rstats = router.stats();
    let fleet_now = sup.fleet_snapshot();
    let total_requests = (CONNS * PER_CONN) as u64;
    assert_eq!(rstats.received, total_requests);
    assert_eq!(
        rstats.forwarded_ok, total_requests,
        "every request got exactly one relayed response: {rstats:?}"
    );
    assert_eq!(
        rstats.forward_attempts, fleet_now.received,
        "router attempts must equal fleet received — no double-counting \
         (router: {rstats:?}, fleet: {fleet_now:?})"
    );
    assert_eq!(
        rstats.forward_attempts, total_requests,
        "no failovers happened, so attempts == requests: {rstats:?}"
    );
    let rejected = rejected_seen.load(Ordering::Relaxed) as u64;
    assert!(rejected > 0, "a 2-slot queue must overflow in this drill");
    assert_eq!(rstats.relayed_rejections, rejected);
    assert_eq!(fleet_now.rejected, rejected);

    router.shutdown();
    router.join();
    let total = sup.shutdown();
    assert!(total.conserved(), "fleet ledger: {total:?}");
}

// ------------------------------------------------------- fleet metrics

/// The router's `stats` slot rows carry per-slot forwarding counters,
/// and its `metrics` op aggregates fleet-wide counters and latency by
/// fanning out to every addressed shard.
#[test]
fn router_metrics_aggregates_the_fleet_and_slot_counters_balance() {
    const SHARDS: usize = 3;
    let (sup, router) = fleet(
        SHARDS,
        ServerConfig::default(),
        RouterConfig {
            // No prober: shard `received` is forwarding + metrics fan-out.
            health_interval: Duration::ZERO,
            ..RouterConfig::default()
        },
    );
    let mut c = Client::connect(router.addr()).expect("connect");

    let chains = chain_set(6);
    for (i, (root, links, bids)) in chains.iter().enumerate() {
        let line = requests::solve_line(i as i64, *root, links, bids);
        assert_eq!(status(&c.call(&line).unwrap()), "ok");
    }

    // Per-slot stats rows: forwarded sums to the solve count, and the
    // failure counters are zero on a healthy fleet.
    let stats = c.call(r#"{"op":"stats"}"#).unwrap();
    let shards = stats
        .get("result")
        .unwrap()
        .get("shards")
        .unwrap()
        .as_array()
        .unwrap();
    assert_eq!(shards.len(), SHARDS);
    let sum = |key: &str| -> u64 {
        shards
            .iter()
            .map(|s| s.get(key).unwrap().as_u64().unwrap())
            .sum()
    };
    assert_eq!(sum("forwarded"), chains.len() as u64);
    assert_eq!(sum("failovers"), 0);
    assert_eq!(sum("relayed_rejections"), 0);

    // The metrics op: fleet aggregation over every live shard.
    let metrics = c.call(r#"{"op":"metrics"}"#).unwrap();
    assert_eq!(status(&metrics), "ok");
    let m = metrics.get("result").unwrap();
    assert_eq!(m.get("role").unwrap().as_str(), Some("router"));
    assert_eq!(
        m.get("counters")
            .unwrap()
            .get("forwarded_ok")
            .unwrap()
            .as_u64(),
        Some(chains.len() as u64)
    );
    let fleet = m.get("fleet").unwrap();
    assert_eq!(
        fleet.get("shards_reporting").unwrap().as_u64(),
        Some(SHARDS as u64)
    );
    // Every shard counts its forwarded solves plus the metrics fan-out
    // request itself (like health probes, those are received too).
    assert_eq!(
        fleet
            .get("counters")
            .unwrap()
            .get("received")
            .unwrap()
            .as_u64(),
        Some((chains.len() + SHARDS) as u64)
    );
    // Fleet latency: exact all-time solve count across the merged shard
    // windows (obs::Histogram::merge is sample-set union).
    let solve = fleet.get("latency_us").unwrap().get("solve").unwrap();
    assert_eq!(
        solve.get("count").unwrap().as_u64(),
        Some(chains.len() as u64)
    );
    assert!(solve.get("p50_us").unwrap().as_f64().unwrap() >= 0.0);

    let text = m.get("text").unwrap().as_str().unwrap();
    assert!(text.contains("# TYPE dls_router_received_total counter"));
    assert!(text.contains("dls_router_slot_forwarded_total{slot=\"0\"}"));
    assert!(text.contains("# TYPE dls_fleet_latency_us summary"));
    assert!(text.contains("dls_fleet_shards_reporting 3"));

    router.shutdown();
    router.join();
    let total = sup.shutdown();
    assert!(total.conserved(), "fleet ledger: {total:?}");
}

// ------------------------------------------------------------ chaos drill

/// Satellite (c): kill a shard mid-burst while the client↔router link
/// runs through the chaos proxy. Every in-flight request must terminate
/// (ok / rejected-exhausted / timeout — no hangs), and every `ok` body
/// must be bit-identical to a fresh solve.
#[test]
fn kill_mid_burst_under_chaos_terminates_everything_correctly() {
    let (sup, router) = fleet(
        2,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
        RouterConfig {
            health_interval: Duration::from_millis(50),
            ..RouterConfig::default()
        },
    );
    let proxy = ChaosProxy::spawn(
        router.addr(),
        ChaosConfig {
            seed: 20_26,
            reset_prob: 0.05,
            delay_prob: 0.10,
            delay: Duration::from_millis(10),
            partial_prob: 0.10,
            corrupt_prob: 0.05,
            event_budget: 60,
        },
    )
    .expect("spawn chaos proxy");
    let proxy_addr = proxy.addr();

    let chains = chain_set(5);
    const CONNS: usize = 4;
    const PER_CONN: usize = 25;
    let ok = AtomicUsize::new(0);
    let exhausted = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for conn in 0..CONNS {
            let (ok, exhausted, chains) = (&ok, &exhausted, &chains);
            scope.spawn(move || {
                let mut rc = ResilientClient::new(
                    proxy_addr.to_string(),
                    RetryPolicy {
                        max_attempts: 8,
                        base_backoff: Duration::from_millis(10),
                        max_backoff: Duration::from_millis(100),
                        client: ClientConfig::fast(Duration::from_millis(500)),
                        seed: conn as u64,
                        ..RetryPolicy::default()
                    },
                );
                for i in 0..PER_CONN {
                    let id = (conn * PER_CONN + i) as i64;
                    let (root, links, bids) = &chains[id as usize % chains.len()];
                    let line = requests::solve_line(id, *root, links, bids);
                    match rc.call(&line) {
                        Ok(out) => {
                            assert_eq!(status(&out.value), "ok", "{}", out.raw);
                            let suffix = expected_result_suffix(*root, links, bids);
                            assert!(
                                out.raw.ends_with(&suffix),
                                "response under chaos not bit-identical\n got: {}",
                                out.raw
                            );
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            // Bounded retries may legitimately exhaust
                            // under heavy chaos; what matters is that the
                            // call *terminated*.
                            exhausted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
            if conn == 0 {
                // Mid-burst: take a shard down; the supervisor brings a
                // replacement back with a new generation.
                scope.spawn(|| {
                    std::thread::sleep(Duration::from_millis(100));
                    sup.kill_shard(0, true);
                });
            }
        }
    });

    let answered = ok.load(Ordering::Relaxed) + exhausted.load(Ordering::Relaxed);
    assert_eq!(answered, CONNS * PER_CONN, "every request terminated");
    assert!(
        ok.load(Ordering::Relaxed) > 0,
        "the fleet must answer some requests even under chaos"
    );
    // With the chaos budget exhausted, the path is transparent again and
    // every key answers first-try.
    assert_eq!(proxy.budget_remaining(), 0, "drill actually injected chaos");
    let mut rc = ResilientClient::new(
        proxy_addr.to_string(),
        RetryPolicy {
            max_attempts: 3,
            client: ClientConfig::fast(Duration::from_secs(2)),
            ..RetryPolicy::default()
        },
    );
    for (i, (root, links, bids)) in chains.iter().enumerate() {
        let out = rc
            .call(&requests::solve_line(1000 + i as i64, *root, links, bids))
            .expect("post-chaos call");
        assert!(
            out.raw
                .ends_with(&expected_result_suffix(*root, links, bids)),
            "{}",
            out.raw
        );
    }

    router.shutdown();
    router.join();
    let total = sup.shutdown();
    assert!(
        total.conserved(),
        "fleet ledger conserved across kill + chaos: {total:?}"
    );
}

// ----------------------------------------------------- cache TTL / quantum

/// Satellite (b): entries past the TTL are re-solved (still bit-identical
/// — the body is a pure function of the canonical chain).
#[test]
fn cache_ttl_expires_entries_end_to_end() {
    let handle = serve(ServerConfig {
        workers: 1,
        cache_ttl_ms: Some(60),
        ..ServerConfig::default()
    })
    .expect("start server");
    let mut c = Client::connect(handle.addr()).expect("connect");
    let line = requests::solve_line(1, 1.0, &[0.2, 0.1], &[2.0, 0.5]);
    let cold = c.call_raw(&line).unwrap();
    assert!(cold.contains("\"cached\":false"));
    let warm = c.call_raw(&line).unwrap();
    assert!(warm.contains("\"cached\":true"), "{warm}");
    std::thread::sleep(Duration::from_millis(100));
    let expired = c.call_raw(&line).unwrap();
    assert!(
        expired.contains("\"cached\":false"),
        "entry past TTL must re-solve: {expired}"
    );
    let suffix = expected_result_suffix(1.0, &[0.2, 0.1], &[2.0, 0.5]);
    for r in [&cold, &warm, &expired] {
        assert!(r.ends_with(&suffix), "{r}");
    }
    let stats = c.call(r#"{"op":"stats"}"#).unwrap();
    let cache = stats.get("result").unwrap().get("cache").unwrap();
    assert_eq!(cache.get("expired").unwrap().as_u64(), Some(1));
    handle.shutdown();
    drop(c);
    let snapshot = handle.join();
    assert!(snapshot.conserved());
}

/// Satellite (b): `reconfigure` swaps the quantum at runtime and drops
/// the whole cache — the next identical request is a cold solve.
#[test]
fn reconfigure_quantum_invalidates_the_cache_end_to_end() {
    let handle = serve(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("start server");
    let mut c = Client::connect(handle.addr()).expect("connect");
    let line = requests::solve_line(1, 1.0, &[0.2, 0.1], &[2.0, 0.5]);
    assert!(c.call_raw(&line).unwrap().contains("\"cached\":false"));
    assert!(c.call_raw(&line).unwrap().contains("\"cached\":true"));

    let re = c.call(r#"{"op":"reconfigure","quantum":1e-6}"#).unwrap();
    assert_eq!(status(&re), "ok");
    let result = re.get("result").unwrap();
    assert_eq!(result.get("cache_cleared").unwrap().as_bool(), Some(true));
    assert_eq!(result.get("quantum").unwrap().as_f64(), Some(1e-6));
    assert_eq!(result.get("cache_entries").unwrap().as_u64(), Some(0));

    let after = c.call_raw(&line).unwrap();
    assert!(
        after.contains("\"cached\":false"),
        "old-epoch entry served after quantum change: {after}"
    );
    let stats = c.call(r#"{"op":"stats"}"#).unwrap();
    let result = stats.get("result").unwrap();
    assert_eq!(result.get("quantum").unwrap().as_f64(), Some(1e-6));
    assert_eq!(
        result
            .get("cache")
            .unwrap()
            .get("invalidations")
            .unwrap()
            .as_u64(),
        Some(1)
    );
    // A no-op reconfigure (same quantum) must not clear anything.
    let re = c.call(r#"{"op":"reconfigure","quantum":1e-6}"#).unwrap();
    assert_eq!(
        re.get("result")
            .unwrap()
            .get("cache_cleared")
            .unwrap()
            .as_bool(),
        Some(false)
    );
    handle.shutdown();
    drop(c);
    assert!(handle.join().conserved());
}
