//! End-to-end tests over real loopback TCP: full protocol session,
//! pipelined out-of-order completions, backpressure under a saturated
//! queue, and the graceful-drain ledger `received == completed + rejected`.

use minijson::Value;
use svc::{serve, Client, ServerConfig};
use workloads::requests;

fn status(v: &Value) -> &str {
    v.get("status").and_then(Value::as_str).unwrap_or("?")
}

#[test]
fn full_protocol_session_over_tcp() {
    let handle = serve(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("start server");
    let mut c = Client::connect(handle.addr()).expect("connect");

    // Liveness.
    let health = c.call(r#"{"op":"health"}"#).unwrap();
    assert_eq!(status(&health), "ok");
    assert_eq!(
        health.get("result").unwrap().get("state").unwrap().as_str(),
        Some("serving")
    );

    // Cold then warm solve: identical result bytes, cached flag flips.
    let line = requests::solve_line(11, 1.0, &[0.2, 0.1, 0.7], &[2.0, 0.5, 4.0]);
    let cold = c.call(&line).unwrap();
    let warm = c.call(&line).unwrap();
    assert_eq!(status(&cold), "ok");
    assert_eq!(cold.get("cached").unwrap().as_bool(), Some(false));
    assert_eq!(warm.get("cached").unwrap().as_bool(), Some(true));
    assert_eq!(warm.get("id").unwrap().as_i64(), Some(11));
    assert_eq!(
        cold.get("result").unwrap().to_json(),
        warm.get("result").unwrap().to_json(),
        "cache hit must be bit-identical to the cold solve"
    );

    // A zero deadline is a guaranteed timeout — rejected at parse time
    // instead of admitted (the timeout path itself is unit-tested in
    // `pool::tests::expired_deadline_yields_timeout`).
    let rushed = c
        .call(
            r#"{"op":"solve","id":12,"deadline_ms":0,"root_rate":1.0,"links":[0.2],"bids":[2.0]}"#,
        )
        .unwrap();
    assert_eq!(status(&rushed), "error");
    assert_eq!(rushed.get("id").unwrap().as_i64(), Some(12));

    // Fault-injected run with a crash keeps the load ledger intact.
    let ft = c
        .call(&requests::ft_line(
            13,
            1.0,
            &[2.0, 0.5, 4.0],
            &[0.2, 0.1, 0.7],
            42,
            Some((2, 3, 0.5)),
        ))
        .unwrap();
    assert_eq!(status(&ft), "ok");
    let report = ft.get("result").unwrap();
    assert_eq!(report.get("load_conserved").unwrap().as_bool(), Some(true));
    assert_eq!(
        report.get("crashed").unwrap().as_array().unwrap()[0].as_u64(),
        Some(2)
    );

    // Malformed and unknown requests answer inline with errors.
    assert_eq!(status(&c.call("this is not json").unwrap()), "error");
    assert_eq!(status(&c.call(r#"{"op":"explode"}"#).unwrap()), "error");

    // Stats reflect the session so far.
    let stats = c.call(r#"{"op":"stats"}"#).unwrap();
    let s = stats.get("result").unwrap();
    assert_eq!(
        s.get("cache").unwrap().get("hits").unwrap().as_u64(),
        Some(1)
    );
    assert_eq!(s.get("timeouts").unwrap().as_u64(), Some(0));
    assert_eq!(
        s.get("errors").unwrap().as_u64(),
        Some(3),
        "bad deadline, malformed line, unknown op"
    );
    let solve_count = s
        .get("endpoints")
        .unwrap()
        .get("solve")
        .unwrap()
        .get("count")
        .unwrap()
        .as_u64()
        .unwrap();
    assert_eq!(
        solve_count, 2,
        "two solves served (rejected requests are not latency-metered)"
    );

    // Graceful drain: shutdown acks, then the ledger must balance.
    let bye = c.call(r#"{"op":"shutdown"}"#).unwrap();
    assert_eq!(status(&bye), "ok");
    assert_eq!(
        bye.get("result").unwrap().get("state").unwrap().as_str(),
        Some("draining")
    );
    drop(c);
    let snapshot = handle.join();
    assert!(snapshot.conserved(), "drain lost requests: {snapshot:?}");
    assert_eq!(snapshot.received, 9);
    assert_eq!(snapshot.rejected, 0);
}

#[test]
fn metrics_op_exposes_counters_schema_and_prometheus_text() {
    let handle = serve(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("start server");
    let mut c = Client::connect(handle.addr()).expect("connect");

    // A cold and a warm solve give the counters something to say.
    let line = requests::solve_line(1, 1.0, &[0.2, 0.1], &[2.0, 0.5]);
    assert_eq!(status(&c.call(&line).unwrap()), "ok");
    assert_eq!(status(&c.call(&line).unwrap()), "ok");

    // Health carries uptime and the full cache counter block
    // (results/README.md documents this schema).
    let health = c.call(r#"{"op":"health"}"#).unwrap();
    let h = health.get("result").unwrap();
    assert!(h.get("uptime_ms").unwrap().as_u64().is_some());
    let hcache = h.get("cache").unwrap();
    for key in ["hits", "misses", "entries", "expired", "invalidations"] {
        assert!(
            hcache.get(key).unwrap().as_u64().is_some(),
            "health cache block missing {key}"
        );
    }

    let metrics = c.call(r#"{"op":"metrics"}"#).unwrap();
    assert_eq!(status(&metrics), "ok");
    let m = metrics.get("result").unwrap();
    assert_eq!(m.get("role").unwrap().as_str(), Some("shard"));
    assert!(m.get("uptime_ms").unwrap().as_u64().is_some());
    assert!(m.get("queue_depth").unwrap().as_u64().is_some());

    let counters = m.get("counters").unwrap();
    // 2 solves + 1 health + this metrics request itself.
    assert_eq!(counters.get("received").unwrap().as_u64(), Some(4));
    assert_eq!(counters.get("cache_hits").unwrap().as_u64(), Some(1));
    assert_eq!(counters.get("cache_misses").unwrap().as_u64(), Some(1));
    assert_eq!(counters.get("cache_expired").unwrap().as_u64(), Some(0));
    assert_eq!(
        counters.get("cache_invalidations").unwrap().as_u64(),
        Some(0)
    );

    // Latency block: exact all-time count plus the bounded sample window
    // a router merges for fleet-wide percentiles.
    let solve = m.get("latency_us").unwrap().get("solve").unwrap();
    assert_eq!(solve.get("count").unwrap().as_u64(), Some(2));
    assert_eq!(solve.get("samples").unwrap().as_array().unwrap().len(), 2);
    assert!(solve.get("p50_us").unwrap().as_f64().unwrap() >= 0.0);

    // Prometheus text: counter families, gauges, and the solve summary.
    let text = m.get("text").unwrap().as_str().unwrap();
    assert!(text.contains("# TYPE dls_received_total counter"));
    assert!(text.contains("dls_received_total 4"));
    assert!(text.contains("# TYPE dls_uptime_ms gauge"));
    assert!(text.contains("dls_latency_us{endpoint=\"solve\",quantile=\"0.5\"}"));
    assert!(text.contains("dls_latency_us_count{endpoint=\"solve\"} 2"));

    // The metrics op is inline: it never perturbs the drain ledger.
    assert_eq!(status(&c.call(r#"{"op":"shutdown"}"#).unwrap()), "ok");
    drop(c);
    let snapshot = handle.join();
    assert!(snapshot.conserved(), "drain lost requests: {snapshot:?}");
    assert_eq!(snapshot.received, 5);
}

#[test]
fn pipelined_requests_complete_out_of_order_and_conserve() {
    let handle = serve(ServerConfig {
        workers: 4,
        queue_capacity: 4096, // larger than the whole batch: no rejections
        ..ServerConfig::default()
    })
    .expect("start server");
    let addr = handle.addr();

    const CONNS: usize = 3;
    const PER_CONN: usize = 200;
    let chains: Vec<(f64, Vec<f64>, Vec<f64>)> = (0..4)
        .map(|i| {
            let s = 1.0 + 0.25 * i as f64;
            (s, vec![0.2 * s, 0.1, 0.7], vec![2.0, 0.5 * s, 4.0])
        })
        .collect();

    std::thread::scope(|scope| {
        for conn in 0..CONNS {
            let chains = &chains;
            scope.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let ids: Vec<i64> = (0..PER_CONN)
                    .map(|i| (conn * PER_CONN + i) as i64)
                    .collect();
                for &id in &ids {
                    let (root, links, bids) = &chains[id as usize % chains.len()];
                    c.send(&requests::solve_line(id, *root, links, bids))
                        .expect("send");
                }
                c.flush().expect("flush");
                let mut seen: std::collections::HashSet<i64> = Default::default();
                for _ in 0..PER_CONN {
                    let v = c.recv().expect("recv");
                    assert_eq!(status(&v), "ok");
                    assert!(seen.insert(v.get("id").unwrap().as_i64().unwrap()));
                }
                assert_eq!(seen, ids.iter().copied().collect());
            });
        }
    });

    handle.shutdown();
    let snapshot = handle.join();
    assert!(snapshot.conserved(), "drain lost requests: {snapshot:?}");
    assert_eq!(snapshot.completed, (CONNS * PER_CONN) as u64);
    assert_eq!(snapshot.rejected, 0);
}

#[test]
fn drain_completes_while_a_client_pipelines_without_idle_gaps() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{mpsc, Arc};
    use std::time::Duration;

    let handle = serve(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("start server");
    let addr = handle.addr();

    // A client that round-trips requests back-to-back: its reader thread
    // on the server keeps getting lines with no 100 ms idle gap, so it
    // must notice the drain from the per-line check, not the read
    // timeout. It stops on its own once the drained server closes the
    // connection.
    let stop = Arc::new(AtomicBool::new(false));
    let pump = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("connect");
            let mut sent: i64 = 0;
            while !stop.load(Ordering::Relaxed) {
                let line = requests::solve_line(sent, 1.0, &[0.2], &[2.0]);
                if c.call(&line).is_err() {
                    break;
                }
                sent += 1;
            }
        })
    };
    // Let the stream get going, then drain mid-flight.
    std::thread::sleep(Duration::from_millis(200));
    handle.shutdown();

    // `join` must return despite the continuously busy connection; give a
    // regression a bounded failure instead of hanging the suite.
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(handle.join());
    });
    let snapshot = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("drain hung while a client pipelined without idle gaps");
    stop.store(true, Ordering::Relaxed);
    pump.join().unwrap();
    assert!(snapshot.conserved(), "drain lost requests: {snapshot:?}");
}

#[test]
fn saturated_queue_rejects_with_backpressure_and_drains_clean() {
    let handle = serve(ServerConfig {
        workers: 1,
        queue_capacity: 2,
        retry_after_ms: 7,
        ..ServerConfig::default()
    })
    .expect("start server");
    let addr = handle.addr();
    let mut c = Client::connect(addr).expect("connect");

    const TOTAL: usize = 200;
    for i in 0..TOTAL {
        // ft_run is never cached, so every request costs real worker time
        // and the two-slot queue must overflow.
        c.send(&requests::ft_line(
            i as i64,
            1.0,
            &[2.0, 0.5, 4.0, 1.5],
            &[0.2, 0.1, 0.7, 0.3],
            i as u64,
            Some((1 + i % 4, 3, 0.5)),
        ))
        .expect("send");
    }
    c.flush().expect("flush");

    let (mut ok, mut rejected, mut other) = (0usize, 0usize, 0usize);
    for _ in 0..TOTAL {
        let v = c.recv().expect("recv");
        match status(&v) {
            "ok" => ok += 1,
            "rejected" => {
                assert_eq!(
                    v.get("reason").unwrap().as_str(),
                    Some("backpressure"),
                    "pre-drain rejections must cite backpressure"
                );
                assert_eq!(v.get("retry_after_ms").unwrap().as_u64(), Some(7));
                rejected += 1;
            }
            _ => other += 1,
        }
    }
    assert_eq!(ok + rejected + other, TOTAL, "every request answered once");
    assert!(
        rejected > 0,
        "a 2-slot queue must overflow under {TOTAL} pipelined ft_runs"
    );
    assert!(ok > 0, "admitted requests must still complete");

    handle.shutdown();
    drop(c);
    let snapshot = handle.join();
    assert!(snapshot.conserved(), "drain lost requests: {snapshot:?}");
    assert_eq!(snapshot.received, TOTAL as u64);
    assert_eq!(snapshot.rejected, rejected as u64);

    // Once drained, the listener is gone.
    assert!(
        Client::connect(addr).is_err(),
        "drained server must refuse connects"
    );
}

#[test]
fn connection_cap_rejects_with_retry_hint_and_recovers() {
    let handle = serve(ServerConfig {
        workers: 1,
        max_conns: 2,
        retry_after_ms: 9,
        ..ServerConfig::default()
    })
    .expect("start server");
    let addr = handle.addr();

    // Two live clients fill the cap.
    let mut a = Client::connect(addr).expect("connect");
    let mut b = Client::connect(addr).expect("connect");
    assert_eq!(status(&a.call(r#"{"op":"health"}"#).unwrap()), "ok");
    assert_eq!(status(&b.call(r#"{"op":"health"}"#).unwrap()), "ok");

    // A third connection gets one parseable rejection line — without
    // sending anything — then EOF.
    {
        use std::io::BufRead;
        let stream = std::net::TcpStream::connect(addr).expect("tcp connect");
        let mut reader = std::io::BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("read rejection line");
        let v = Value::parse(line.trim()).expect("rejection must be valid JSON");
        assert_eq!(status(&v), "rejected");
        assert_eq!(
            v.get("reason").unwrap().as_str(),
            Some("connection-limit"),
            "cap rejections must cite the connection limit"
        );
        assert_eq!(v.get("retry_after_ms").unwrap().as_u64(), Some(9));
        let mut rest = String::new();
        assert_eq!(
            reader.read_line(&mut rest).expect("read eof"),
            0,
            "capped connection must be closed after the rejection line"
        );
    }

    // The capped-out attempt must not have disturbed the live sessions.
    assert_eq!(status(&a.call(r#"{"op":"health"}"#).unwrap()), "ok");
    assert_eq!(status(&b.call(r#"{"op":"health"}"#).unwrap()), "ok");

    // Dropping a client frees a slot; the reap runs on the next accept,
    // so retry (with the hinted pause) until admitted.
    drop(b);
    let mut c = loop {
        let mut c = Client::connect(addr).expect("tcp connect");
        match c.call(r#"{"op":"health"}"#) {
            Ok(v) if status(&v) == "ok" => break c,
            _ => std::thread::sleep(std::time::Duration::from_millis(9)),
        }
    };

    // The recovered slot is a full session, and the drain ledger holds.
    let line = requests::solve_line(1, 1.0, &[0.2, 0.1], &[2.0, 0.5]);
    assert_eq!(status(&c.call(&line).unwrap()), "ok");
    handle.shutdown();
    drop(a);
    drop(c);
    let snapshot = handle.join();
    assert!(snapshot.conserved(), "drain lost requests: {snapshot:?}");
}
