//! End-to-end tests for the multi-job queue (`submit_job` / `job_status`
//! / `cancel_job`) over real loopback TCP: the frozen single-job byte
//! guarantee against `solve`, the composed multiround job report, status
//! probes, capacity backpressure, and the jobs conservation ledger
//! `submitted == completed + cancelled + rejected`.

use minijson::Value;
use svc::{serve, Client, ServerConfig};
use workloads::requests;

fn status(v: &Value) -> &str {
    v.get("status").and_then(Value::as_str).unwrap_or("?")
}

const LINKS: [f64; 3] = [0.2, 0.1, 0.7];
const BIDS: [f64; 3] = [2.0, 0.5, 4.0];

#[test]
fn single_plain_job_bytes_are_bit_identical_to_solve() {
    // Two fresh servers so both paths start cold: the frozen guarantee is
    // that a queue holding exactly one plain job (unit load, no explicit
    // rounds, no startup) serves through the solver cache exactly like
    // the `solve` op — same body, same `cached` flag, same bytes.
    let solve_srv = serve(ServerConfig::default()).expect("start solve server");
    let jobs_srv = serve(ServerConfig::default()).expect("start jobs server");
    let mut via_solve = Client::connect(solve_srv.addr()).expect("connect");
    let mut via_jobs = Client::connect(jobs_srv.addr()).expect("connect");

    let solve_line = requests::solve_line(7, 1.0, &LINKS, &BIDS);
    let job_line = requests::job_line(7, 1.0, &LINKS, &BIDS, 1.0, None, 0.0);

    let cold_solve = via_solve.call_raw(&solve_line).unwrap();
    let cold_job = via_jobs.call_raw(&job_line).unwrap();
    assert_eq!(
        cold_solve, cold_job,
        "cold single plain job must be byte-identical to solve"
    );

    // Warm pass: the job path populated the same cache, so the hit flag
    // and bytes keep matching.
    let warm_solve = via_solve.call_raw(&solve_line).unwrap();
    let warm_job = via_jobs.call_raw(&job_line).unwrap();
    assert_eq!(warm_solve, warm_job, "warm bytes must match too");
    assert!(warm_job.contains("\"cached\":true"), "{warm_job}");

    solve_srv.shutdown();
    jobs_srv.shutdown();
    drop(via_solve);
    drop(via_jobs);
    assert!(solve_srv.join().conserved());
    assert!(jobs_srv.join().conserved());
}

#[test]
fn multiround_job_reports_composition_and_settlement() {
    let handle = serve(ServerConfig::default()).expect("start server");
    let mut c = Client::connect(handle.addr()).expect("connect");

    // A non-unit load with a startup cost takes the composed path.
    let line = requests::job_line(21, 1.0, &LINKS, &BIDS, 3.0, None, 0.02);
    let v = c.call(&line).unwrap();
    assert_eq!(status(&v), "ok", "{v:?}");
    assert_eq!(v.get("id").unwrap().as_i64(), Some(21));
    let r = v.get("result").unwrap();
    let job_id = r.get("job_id").unwrap().as_u64().unwrap();
    assert!(job_id >= 1);
    assert_eq!(r.get("m").unwrap().as_u64(), Some(3));
    assert_eq!(r.get("load").unwrap().as_f64(), Some(3.0));
    let rounds = r.get("rounds").unwrap().as_u64().unwrap();
    assert!((1..=16).contains(&rounds), "rounds out of range: {rounds}");

    // The report's timeline invariants: the batch never finishes later
    // than the sequential one-shot baseline, and this job finishes within
    // the batch makespan.
    let finish = r.get("finish").unwrap().as_f64().unwrap();
    let batch_makespan = r.get("batch_makespan").unwrap().as_f64().unwrap();
    let sequential = r.get("sequential_makespan").unwrap().as_f64().unwrap();
    assert!(finish > 0.0);
    assert!(finish <= batch_makespan + 1e-9);
    assert!(
        batch_makespan <= sequential + 1e-9,
        "pipelined {batch_makespan} > sequential {sequential}"
    );

    // The allocation ships the whole load; settlement covers every
    // strategic processor.
    let alloc = r.get("alloc").unwrap().as_array().unwrap();
    assert_eq!(alloc.len(), 4, "alloc spans root + m processors");
    let shipped: f64 = alloc.iter().map(|a| a.as_f64().unwrap()).sum();
    assert!(
        (shipped - 3.0).abs() < 1e-6,
        "alloc sums to load: {shipped}"
    );
    assert_eq!(r.get("payments").unwrap().as_array().unwrap().len(), 3);
    assert_eq!(r.get("utilities").unwrap().as_array().unwrap().len(), 3);
    assert!(r
        .get("total_payment")
        .unwrap()
        .as_f64()
        .unwrap()
        .is_finite());

    // Status after completion: done, with the composed finish time and
    // the round count the pipelining rule actually used.
    let st = c
        .call(&requests::job_status_line(22, 1.0, &LINKS, &BIDS, job_id))
        .unwrap();
    assert_eq!(status(&st), "ok");
    let sr = st.get("result").unwrap();
    assert_eq!(sr.get("state").unwrap().as_str(), Some("done"));
    assert_eq!(sr.get("rounds").unwrap().as_u64(), Some(rounds));
    assert_eq!(sr.get("finish").unwrap().as_f64(), Some(finish));
    assert!(sr
        .get("chain")
        .unwrap()
        .as_str()
        .unwrap()
        .starts_with("m3:"));

    // Terminal jobs refuse cancellation; unknown ids error on both ops.
    let cancel = c
        .call(&format!(
            r#"{{"op":"cancel_job","id":23,"root_rate":1.0,"links":[0.2,0.1,0.7],"bids":[2.0,0.5,4.0],"job_id":{job_id}}}"#
        ))
        .unwrap();
    assert_eq!(status(&cancel), "error");
    let unknown = c
        .call(&requests::job_status_line(24, 1.0, &LINKS, &BIDS, 424242))
        .unwrap();
    assert_eq!(status(&unknown), "error");

    handle.shutdown();
    drop(c);
    assert!(handle.join().conserved());
}

#[test]
fn job_burst_conserves_and_reports_queue_stats() {
    let handle = serve(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("start server");
    let mut c = Client::connect(handle.addr()).expect("connect");

    // A pipelined burst across two distinct chains: every submit is
    // answered exactly once, then the jobs ledger must balance.
    const TOTAL: usize = 40;
    let other_bids = [1.5, 0.8, 3.0];
    for i in 0..TOTAL {
        let bids: &[f64] = if i % 2 == 0 { &BIDS } else { &other_bids };
        let load = 1.0 + 0.25 * (i % 5) as f64;
        c.send(&requests::job_line(
            i as i64,
            1.0,
            &LINKS,
            bids,
            load,
            (i % 7 == 0).then_some(3),
            0.0,
        ))
        .expect("send");
    }
    c.flush().expect("flush");
    let mut seen = std::collections::HashSet::new();
    for _ in 0..TOTAL {
        let v = c.recv().expect("recv");
        assert_eq!(status(&v), "ok", "{v:?}");
        assert!(seen.insert(v.get("id").unwrap().as_i64().unwrap()));
    }
    assert_eq!(seen.len(), TOTAL);

    // The stats jobs block: conservation, empty queues, per-chain rows.
    let stats = c.call(r#"{"op":"stats"}"#).unwrap();
    let jobs = stats.get("result").unwrap().get("jobs").unwrap();
    let submitted = jobs.get("submitted").unwrap().as_u64().unwrap();
    let completed = jobs.get("completed").unwrap().as_u64().unwrap();
    let cancelled = jobs.get("cancelled").unwrap().as_u64().unwrap();
    let rejected = jobs.get("rejected").unwrap().as_u64().unwrap();
    assert_eq!(submitted, TOTAL as u64);
    assert_eq!(
        submitted,
        completed + cancelled + rejected,
        "jobs ledger must balance"
    );
    assert_eq!(rejected, 0, "default capacity admits the whole burst");
    assert_eq!(jobs.get("queued").unwrap().as_u64(), Some(0));
    assert_eq!(jobs.get("active_installments").unwrap().as_u64(), Some(0));
    let chains = jobs.get("chains").unwrap().as_array().unwrap();
    assert_eq!(chains.len(), 2, "two distinct chains, two queues");
    let per_chain: u64 = chains
        .iter()
        .map(|row| row.get("completed").unwrap().as_u64().unwrap())
        .sum();
    assert_eq!(per_chain, TOTAL as u64);

    // The job endpoint is latency-metered and fleet-aggregable.
    let ep = stats
        .get("result")
        .unwrap()
        .get("endpoints")
        .unwrap()
        .get("job")
        .unwrap();
    assert_eq!(ep.get("count").unwrap().as_u64(), Some(TOTAL as u64));
    let metrics = c.call(r#"{"op":"metrics"}"#).unwrap();
    let counters = metrics.get("result").unwrap().get("counters").unwrap();
    assert_eq!(
        counters.get("jobs_completed").unwrap().as_u64(),
        Some(TOTAL as u64)
    );
    let text = metrics
        .get("result")
        .unwrap()
        .get("text")
        .unwrap()
        .as_str()
        .unwrap();
    assert!(text.contains("dls_jobs_completed_total 40"), "{text}");

    handle.shutdown();
    drop(c);
    let snapshot = handle.join();
    assert!(snapshot.conserved(), "drain lost requests: {snapshot:?}");
}

#[test]
fn job_queue_capacity_rejects_with_backpressure() {
    let handle = serve(ServerConfig {
        workers: 1,
        job_queue_capacity: 1,
        retry_after_ms: 11,
        ..ServerConfig::default()
    })
    .expect("start server");
    let mut c = Client::connect(handle.addr()).expect("connect");

    // Non-plain loads force the composed path, so the single-slot queue
    // must overflow under a pipelined burst.
    const TOTAL: usize = 60;
    for i in 0..TOTAL {
        c.send(&requests::job_line(
            i as i64, 1.0, &LINKS, &BIDS, 2.5, None, 0.0,
        ))
        .expect("send");
    }
    c.flush().expect("flush");
    let (mut ok, mut rejected) = (0usize, 0usize);
    for _ in 0..TOTAL {
        let v = c.recv().expect("recv");
        match status(&v) {
            "ok" => ok += 1,
            "rejected" => {
                assert_eq!(v.get("reason").unwrap().as_str(), Some("backpressure"));
                assert_eq!(v.get("retry_after_ms").unwrap().as_u64(), Some(11));
                rejected += 1;
            }
            other => panic!("unexpected status {other}: {v:?}"),
        }
    }
    assert_eq!(ok + rejected, TOTAL, "every submit answered exactly once");
    assert!(ok > 0, "admitted jobs must still complete");
    assert!(
        rejected > 0,
        "a 1-slot job queue must overflow under {TOTAL} pipelined submits"
    );

    // Both ledgers balance: the drain invariant and the jobs invariant.
    let stats = c.call(r#"{"op":"stats"}"#).unwrap();
    let jobs = stats.get("result").unwrap().get("jobs").unwrap();
    assert_eq!(jobs.get("submitted").unwrap().as_u64(), Some(TOTAL as u64));
    assert_eq!(jobs.get("completed").unwrap().as_u64(), Some(ok as u64));
    assert_eq!(
        jobs.get("rejected").unwrap().as_u64(),
        Some(rejected as u64)
    );

    handle.shutdown();
    drop(c);
    let snapshot = handle.join();
    assert!(snapshot.conserved(), "drain lost requests: {snapshot:?}");
    assert_eq!(snapshot.rejected, rejected as u64);
}

#[test]
fn router_co_locates_job_ops_with_their_chain() {
    use svc::{Router, RouterConfig, ShardDirectory};

    // Two shards behind a router: all ops for one chain — solve and the
    // whole job lifecycle — land on the same shard, so the queue, the
    // records, and the solver cache agree.
    let a = serve(ServerConfig::default()).expect("shard a");
    let b = serve(ServerConfig::default()).expect("shard b");
    let dir = ShardDirectory::new(2);
    dir.set_addr(0, a.addr());
    dir.set_addr(1, b.addr());
    let router = Router::spawn(dir, RouterConfig::default()).expect("router");
    let mut c = Client::connect(router.addr()).expect("connect");

    let submit = c
        .call(&requests::job_line(1, 1.0, &LINKS, &BIDS, 2.0, None, 0.0))
        .unwrap();
    assert_eq!(status(&submit), "ok", "{submit:?}");
    let job_id = submit
        .get("result")
        .unwrap()
        .get("job_id")
        .unwrap()
        .as_u64()
        .unwrap();

    // The status probe routes to the shard that ran the job (same chain
    // key), so the record is found.
    let st = c
        .call(&requests::job_status_line(2, 1.0, &LINKS, &BIDS, job_id))
        .unwrap();
    assert_eq!(status(&st), "ok", "{st:?}");
    assert_eq!(
        st.get("result").unwrap().get("state").unwrap().as_str(),
        Some("done")
    );

    // The plain-job byte guarantee holds through the router too: the
    // submit warms the same shard cache a solve reads.
    let solve_line = requests::solve_line(3, 1.0, &LINKS, &BIDS);
    let job_line = requests::job_line(3, 1.0, &LINKS, &BIDS, 1.0, None, 0.0);
    let via_job = c.call_raw(&job_line).unwrap();
    let via_solve = c.call_raw(&solve_line).unwrap();
    let strip = |s: &str| {
        s.replace("\"cached\":true", "")
            .replace("\"cached\":false", "")
    };
    assert_eq!(
        strip(&via_job),
        strip(&via_solve),
        "job and solve must share one shard's cache bytes"
    );
    assert!(via_solve.contains("\"cached\":true"), "{via_solve}");

    drop(c);
    router.shutdown();
    router.join();
    a.shutdown();
    b.shutdown();
    assert!(a.join().conserved());
    assert!(b.join().conserved());
}
