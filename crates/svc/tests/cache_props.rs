//! Solver-cache correctness properties (ISSUE 4):
//!
//! 1. A cache hit returns **byte-identical** bytes to the cold solve it
//!    replaced, for random bid chains.
//! 2. Quantization never aliases two chains whose optimal allocations
//!    differ at the configured tolerance: chains that share a key differ
//!    per rate by less than one quantum, and their true (unquantized)
//!    optimal allocations agree to well within the service tolerance.
//! 3. Chains that differ by at least one quantum in any rate never share
//!    a key.
//!
//! PR 6 adds the staleness controls:
//!
//! 4. A TTL expiry forces a re-solve whose bytes are identical to the
//!    expired entry — expiry affects *when* we solve, never *what*.
//! 5. A quantum change drops every resident entry: no request after a
//!    `reconfigure` can ever be answered by an old-epoch body.
//!
//! ISSUE 8 routes the cold solve through the batch solver core
//! (`dlt::batch::solve_one` inside `DlsLbl::allocate`) and adds:
//!
//! 6. The numbers in a cold-solved body are **bit-identical** to the
//!    frozen scalar solver `dlt::linear::reference` applied to the same
//!    quantized canonical chain — the batch rewiring is invisible at the
//!    wire, down to the last bit of every serialized float.

use dlt::linear;
use dlt::model::LinearNetwork;
use proptest::prelude::*;
use svc::handlers::solve_body;
use svc::{canonicalize, SolverCache, DEFAULT_QUANTUM};

/// Tolerance at which the service considers two allocations distinct.
const ALLOC_TOL: f64 = 1e-6;

fn chain_inputs() -> impl Strategy<Value = (f64, Vec<f64>, Vec<f64>)> {
    (1usize..=6).prop_flat_map(|m| {
        (
            0.1f64..5.0,
            proptest::collection::vec(0.01f64..2.0, m),
            proptest::collection::vec(0.1f64..5.0, m),
        )
    })
}

fn true_alloc(root: f64, links: &[f64], bids: &[f64]) -> Vec<f64> {
    let mut w = vec![root];
    w.extend_from_slice(bids);
    let net = LinearNetwork::from_rates(&w, links);
    let sol = linear::solve(&net);
    (0..net.len()).map(|i| sol.alloc.alpha(i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cache_hit_is_byte_identical_to_cold_solve((root, links, bids) in chain_inputs()) {
        let chain = canonicalize(root, &links, &bids, DEFAULT_QUANTUM).unwrap();
        let cache = SolverCache::new(4, 32);
        let (cold, hit_cold) = cache.get_or_insert(&chain.key, || solve_body(&chain));
        prop_assert!(!hit_cold);
        // A second request for the same chain — and any request that
        // canonicalizes to the same key — must see the same bytes.
        let (warm, hit_warm) = cache.get_or_insert(&chain.key, || unreachable!("cache must hit"));
        prop_assert!(hit_warm);
        prop_assert_eq!(cold.as_bytes(), warm.as_bytes());
        // And the cached bytes equal an independent cold solve.
        prop_assert_eq!(warm.as_str(), solve_body(&chain).as_str());
    }

    #[test]
    fn cold_solve_is_bit_identical_to_the_frozen_reference(
        (root, links, bids) in chain_inputs(),
    ) {
        // The body a cold solve produces (and the cache then retains) is
        // computed through the batch core; the reference path below never
        // touches `dlt::batch`. minijson writes floats with Rust's
        // shortest-roundtrip formatting and parses them back correctly
        // rounded, so `to_bits` equality through the serialized body is a
        // faithful bit-identity check.
        let chain = canonicalize(root, &links, &bids, DEFAULT_QUANTUM).unwrap();
        let body = minijson::Value::parse(&solve_body(&chain)).expect("body is JSON");

        let mut w = vec![chain.root_rate];
        w.extend_from_slice(&chain.bids);
        let net = LinearNetwork::from_rates(&w, &chain.link_rates);
        let want = dlt::linear::reference::solve(&net);

        let makespan = body.get("makespan").and_then(|v| v.as_f64()).unwrap();
        prop_assert_eq!(makespan.to_bits(), want.makespan().to_bits());
        let alloc = body.get("alloc").and_then(|v| v.as_array()).unwrap();
        prop_assert_eq!(alloc.len(), net.len());
        for (i, v) in alloc.iter().enumerate() {
            prop_assert_eq!(
                v.as_f64().unwrap().to_bits(),
                want.alloc.alpha(i).to_bits(),
                "alloc[{}]", i
            );
        }
    }

    #[test]
    fn aliased_chains_agree_at_the_tolerance(
        (root, links, bids) in chain_inputs(),
        jitter in proptest::collection::vec(-0.49f64..0.49, 13),
    ) {
        // Perturb every rate by strictly less than half a quantum around
        // its canonical value: the perturbed chain is *forced* to alias.
        let canon = canonicalize(root, &links, &bids, DEFAULT_QUANTUM).unwrap();
        let mut j = jitter.into_iter().cycle();
        let mut wiggle = |x: f64| x + j.next().unwrap() * DEFAULT_QUANTUM;
        let root2 = wiggle(canon.root_rate);
        let links2: Vec<f64> = canon.link_rates.iter().map(|&z| wiggle(z)).collect();
        let bids2: Vec<f64> = canon.bids.iter().map(|&b| wiggle(b)).collect();
        let canon2 = canonicalize(root2, &links2, &bids2, DEFAULT_QUANTUM).unwrap();
        prop_assert_eq!(&canon.key, &canon2.key, "sub-quantum jitter must alias");
        // Aliased chains must not differ at the advertised tolerance: the
        // true optimal allocations of the two *unquantized* chains agree.
        let a = true_alloc(root, &links, &bids);
        let b = true_alloc(root2, &links2, &bids2);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            prop_assert!(
                (x - y).abs() < ALLOC_TOL,
                "alpha_{} diverged: {} vs {}", i, x, y
            );
        }
    }

    #[test]
    fn super_quantum_changes_never_alias(
        (root, links, bids) in chain_inputs(),
        which in 0usize..12,
        bump in 2.0f64..1000.0,
    ) {
        let canon = canonicalize(root, &links, &bids, DEFAULT_QUANTUM).unwrap();
        let m = bids.len();
        let slot = which % (1 + 2 * m);
        let delta = bump * DEFAULT_QUANTUM;
        let (mut root2, mut links2, mut bids2) =
            (canon.root_rate, canon.link_rates.clone(), canon.bids.clone());
        if slot == 0 {
            root2 += delta;
        } else if slot <= m {
            links2[slot - 1] += delta;
        } else {
            bids2[slot - 1 - m] += delta;
        }
        let canon2 = canonicalize(root2, &links2, &bids2, DEFAULT_QUANTUM).unwrap();
        prop_assert_ne!(&canon.key, &canon2.key, "a ≥ 2-quantum change must re-key");
    }

    #[test]
    fn ttl_expiry_resolves_to_identical_bytes((root, links, bids) in chain_inputs()) {
        // A zero TTL expires every entry on its next touch — no sleeping.
        let chain = canonicalize(root, &links, &bids, DEFAULT_QUANTUM).unwrap();
        let cache = SolverCache::with_ttl(4, 32, Some(std::time::Duration::ZERO));
        let (cold, hit) = cache.get_or_insert(&chain.key, || solve_body(&chain));
        prop_assert!(!hit);
        let (resolved, hit) = cache.get_or_insert(&chain.key, || solve_body(&chain));
        prop_assert!(!hit, "zero-TTL entry must expire into a miss");
        prop_assert_eq!(cache.expired(), 1);
        prop_assert_eq!(
            cold.as_bytes(), resolved.as_bytes(),
            "expiry changed the answer bytes"
        );
    }

    #[test]
    fn quantum_change_never_serves_a_stale_body(
        (root, links, bids) in chain_inputs(),
        q_idx in 0usize..4,
    ) {
        let quantum2 = [1e-6f64, 1e-7, 1e-8, 1e-12][q_idx];
        prop_assert_ne!(quantum2, DEFAULT_QUANTUM);
        let cache = SolverCache::new(4, 32);
        cache.invalidate_on_quantum_change(DEFAULT_QUANTUM);
        let chain = canonicalize(root, &links, &bids, DEFAULT_QUANTUM).unwrap();
        cache.get_or_insert(&chain.key, || solve_body(&chain));
        prop_assert_eq!(cache.len(), 1);
        // The server reconfigures its quantum: every entry must go, even
        // ones whose tick vector would collide across the two epochs.
        prop_assert!(cache.invalidate_on_quantum_change(quantum2));
        prop_assert!(cache.is_empty(), "old-epoch entry survived");
        let chain2 = canonicalize(root, &links, &bids, quantum2).unwrap();
        let (body, hit) = cache.get_or_insert(&chain2.key, || solve_body(&chain2));
        prop_assert!(!hit, "post-reconfigure request must cold-solve");
        prop_assert_eq!(body.as_str(), solve_body(&chain2).as_str());
    }
}
