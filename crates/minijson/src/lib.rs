//! Minimal dependency-free JSON: a [`Value`] tree, a recursive-descent
//! parser, and a writer.
//!
//! This exists because the build environment has no registry access, so
//! `serde_json` is unavailable. The subset implemented is full JSON minus
//! two deliberate simplifications: numbers are `f64` (adequate for rates,
//! probabilities and seeds up to 2^53), and object key order is preserved
//! as written (lookups are linear — spec files are tiny).

#![forbid(unsafe_code)]

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in written order.
    Object(Vec<(String, Value)>),
}

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset where the failure was detected.
    pub offset: usize,
    /// Human-readable reason.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl Value {
    /// Parse a complete JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Object member lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as a non-negative integer (must be integral and in range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(x) if *x >= 0.0 && *x <= 2f64.powi(53) && x.fract() == 0.0 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The number as a signed integer (must be integral and within ±2^53,
    /// the range where `f64` represents every integer exactly).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(x) if x.abs() <= 2f64.powi(53) && x.fract() == 0.0 => Some(*x as i64),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object members in written order, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Serialize compactly (no insignificant whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(x) => write_number(*x, out),
            Value::String(s) => write_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_number(x: f64, out: &mut String) {
    if !x.is_finite() {
        // JSON has no Inf/NaN; null is the conventional degradation.
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 2f64.powi(53) {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for spec files;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| ParseError {
                offset: start,
                message: format!("bad number {text:?}"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("-2.5e2").unwrap(), Value::Number(-250.0));
        assert_eq!(
            Value::parse(r#""a\nb""#).unwrap(),
            Value::String("a\nb".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Value::parse(r#"{"a": [1, 2.5, {"b": null}], "c": "x"}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].get("b"), Some(&Value::Null));
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(Value::parse("1 2").is_err());
        assert!(Value::parse("[1,").is_err());
        assert!(Value::parse(r#"{"a": }"#).is_err());
        assert!(Value::parse("").is_err());
    }

    #[test]
    fn round_trips_through_writer() {
        let src = r#"{"w":[1,2.5],"flag":true,"name":"bottleneck-link","none":null}"#;
        let v = Value::parse(src).unwrap();
        let re = Value::parse(&v.to_json()).unwrap();
        assert_eq!(v, re);
        assert_eq!(v.to_json(), src);
    }

    #[test]
    fn integral_numbers_write_without_fraction() {
        assert_eq!(Value::Number(99.0).to_json(), "99");
        assert_eq!(Value::Number(0.5).to_json(), "0.5");
    }

    #[test]
    fn u64_accessor_guards_range_and_fraction() {
        assert_eq!(Value::Number(7.0).as_u64(), Some(7));
        assert_eq!(Value::Number(7.5).as_u64(), None);
        assert_eq!(Value::Number(-1.0).as_u64(), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::String("quote\" slash\\ tab\t ctrl\u{0001}".into());
        assert_eq!(Value::parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn error_reports_offset() {
        let e = Value::parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
    }

    #[test]
    fn i64_accessor_guards_range_and_fraction() {
        assert_eq!(Value::Number(-7.0).as_i64(), Some(-7));
        assert_eq!(Value::Number(7.0).as_i64(), Some(7));
        assert_eq!(Value::Number(7.5).as_i64(), None);
        assert_eq!(Value::Number(2f64.powi(54)).as_i64(), None);
        assert_eq!(Value::String("7".into()).as_i64(), None);
    }

    #[test]
    fn object_accessor_exposes_members_in_order() {
        let v = Value::parse(r#"{"b":1,"a":2}"#).unwrap();
        let members = v.as_object().unwrap();
        assert_eq!(members.len(), 2);
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        assert_eq!(members[1].1.as_i64(), Some(2));
        assert!(Value::Array(vec![]).as_object().is_none());
    }

    #[test]
    fn nested_values_round_trip_parse_of_to_json() {
        let cases = [
            Value::Null,
            Value::Bool(false),
            Value::Number(-0.125),
            Value::Number(9007199254740992.0), // 2^53, boundary of exact i64 write
            Value::String(String::new()),
            Value::Array(vec![
                Value::Object(vec![
                    ("deep".into(), Value::Array(vec![Value::Null])),
                    ("n".into(), Value::Number(1e-9)),
                ]),
                Value::String("π ≈ 3".into()),
            ]),
            Value::Object(vec![(
                "outer".into(),
                Value::Object(vec![(
                    "inner".into(),
                    Value::Array(vec![Value::Bool(true)]),
                )]),
            )]),
        ];
        for v in cases {
            assert_eq!(Value::parse(&v.to_json()).unwrap(), v, "case {v:?}");
        }
    }

    #[test]
    fn every_control_character_escapes_and_round_trips() {
        // All of U+0000..U+001F must be escaped on write and re-parse to the
        // same string (the named escapes \n \r \t and \uXXXX for the rest).
        let s: String = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
        let v = Value::String(s.clone());
        let json = v.to_json();
        for byte in json.as_bytes() {
            assert!(*byte >= 0x20, "raw control byte {byte:#04x} in {json:?}");
        }
        assert_eq!(Value::parse(&json).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_parse_to_code_points() {
        assert_eq!(
            Value::parse(r#""\u0041\u00e9\u2603""#).unwrap(),
            Value::String("Aé☃".into())
        );
        // Lone surrogates degrade to U+FFFD rather than erroring.
        assert_eq!(
            Value::parse(r#""\ud800""#).unwrap(),
            Value::String("\u{FFFD}".into())
        );
        assert!(Value::parse(r#""\u00g1""#).is_err());
        assert!(Value::parse(r#""\u00""#).is_err());
    }
}
