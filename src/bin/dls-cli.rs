//! `dls-cli` — command-line front end for the DLS-LBL library.
//!
//! ```text
//! dls-cli solve      <w0,w1,..> <z1,..>          optimal allocation + makespan
//! dls-cli gantt      <w0,w1,..> <z1,..>          ASCII Gantt chart (Figure 2)
//! dls-cli run        <w0,w1,..> <z1,..> [J:DEV[:ARG]]...
//!                                                full 4-phase protocol run with
//!                                                optional deviations, e.g. 2:shed:0.5
//! dls-cli run-file   <spec.json>                  run a declarative scenario file
//! dls-cli sweep      <j> <w0,w1,..> <z1,..>      utility vs bid for processor j
//! dls-cli multiround <kmax> <c> <w0,w1,..> <z1,..>
//!                                                makespan vs number of installments
//! ```
//!
//! Rates are comma-separated. `w` lists all processors (root first); `z`
//! lists the links between consecutive processors.

#![allow(clippy::needless_range_loop)] // parallel-array tables

use dls::prelude::*;
use std::process::ExitCode;

fn parse_rates(s: &str) -> Result<Vec<f64>, String> {
    s.split(',')
        .map(|t| {
            t.trim()
                .parse::<f64>()
                .map_err(|e| format!("bad rate {t:?}: {e}"))
        })
        .collect()
}

fn parse_network(w: &str, z: &str) -> Result<LinearNetwork, String> {
    let w = parse_rates(w)?;
    let z = parse_rates(z)?;
    if w.len() != z.len() + 1 {
        return Err(format!(
            "{} processors need {} links, got {}",
            w.len(),
            w.len() - 1,
            z.len()
        ));
    }
    Ok(LinearNetwork::from_rates(&w, &z))
}

fn parse_deviation(spec: &str) -> Result<(usize, Deviation), String> {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() < 2 {
        return Err(format!("deviation spec {spec:?}; expected J:KIND[:ARG]"));
    }
    let j: usize = parts[0]
        .parse()
        .map_err(|e| format!("bad index in {spec:?}: {e}"))?;
    let arg = |default: f64| -> Result<f64, String> {
        parts
            .get(2)
            .map(|a| {
                a.parse::<f64>()
                    .map_err(|e| format!("bad arg in {spec:?}: {e}"))
            })
            .unwrap_or(Ok(default))
    };
    let deviation = match parts[1] {
        "underbid" => Deviation::Underbid { factor: arg(0.5)? },
        "overbid" => Deviation::Overbid { factor: arg(2.0)? },
        "slack" => Deviation::SlackExecution { factor: arg(1.5)? },
        "contradict" => Deviation::ContradictoryBid {
            second_factor: arg(0.7)?,
        },
        "wrong-equivalent" => Deviation::WrongEquivalent { factor: arg(0.6)? },
        "wrong-distribution" => Deviation::WrongDistribution { factor: arg(1.3)? },
        "shed" => Deviation::ShedLoad {
            keep_fraction: arg(0.5)?,
        },
        "overcharge" => Deviation::Overcharge { amount: arg(0.5)? },
        "false-accusation" => Deviation::FalseAccusation,
        other => return Err(format!("unknown deviation kind {other:?}")),
    };
    Ok((j, deviation))
}

fn cmd_solve(w: &str, z: &str) -> Result<(), String> {
    let net = parse_network(w, z)?;
    let sol = solve_linear(&net);
    println!("network: {net}");
    println!(
        "{:<6} {:>12} {:>12} {:>12}",
        "proc", "alpha", "w_bar", "finish"
    );
    let times = finish_times(&net, &sol.alloc);
    for i in 0..net.len() {
        println!(
            "{:<6} {:>12.6} {:>12.6} {:>12.6}",
            format!("P{i}"),
            sol.alloc.alpha(i),
            sol.equivalent[i],
            times[i]
        );
    }
    println!("makespan: {:.6}", sol.makespan());
    Ok(())
}

fn cmd_gantt(w: &str, z: &str) -> Result<(), String> {
    let net = parse_network(w, z)?;
    let sol = solve_linear(&net);
    let run = dls::sim::simulate_honest(&net, &sol.local);
    println!("legend: ▒ receive  █ compute  ░ send");
    print!("{}", run.gantt.render_ascii(72));
    println!("makespan: {:.6} ({} events)", run.makespan, run.events);
    Ok(())
}

fn cmd_run(w: &str, z: &str, dev_specs: &[String]) -> Result<(), String> {
    let net = parse_network(w, z)?;
    if net.len() < 2 {
        return Err("need at least one strategic processor".into());
    }
    let parts = dls::workloads::mechanism_parts(&net);
    let mut scenario = Scenario::honest(parts.root_rate, parts.true_rates, parts.link_rates);
    for spec in dev_specs {
        let (j, d) = parse_deviation(spec)?;
        if j < 1 || j > scenario.num_agents() {
            return Err(format!(
                "deviant index {j} out of range 1..={}",
                scenario.num_agents()
            ));
        }
        scenario = scenario.with_deviation(j, d);
    }
    let report = dls::protocol::try_run(&scenario).map_err(|e| format!("invalid scenario: {e}"))?;
    println!(
        "makespan: {:.6}   events: {}",
        report.makespan, report.events
    );
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>12}",
        "proc", "assigned", "retained", "w~", "net utility"
    );
    for j in 1..=scenario.num_agents() {
        println!(
            "{:<6} {:>10.5} {:>10.5} {:>10.4} {:>12.5}",
            format!("P{j}"),
            report.assigned[j],
            report.retained[j],
            report.actual_rates[j - 1],
            report.utility(j)
        );
    }
    if report.clean() {
        println!("no grievances filed");
    } else {
        for a in &report.arbitrations {
            println!(
                "arbitration: {} by P{} against P{} — {} (fine {:.3})",
                a.complaint,
                a.claimant,
                a.accused,
                if a.substantiated {
                    "SUBSTANTIATED"
                } else {
                    "rejected"
                },
                a.fine
            );
        }
    }
    Ok(())
}

fn cmd_run_file(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let spec =
        dls::workloads::ScenarioSpec::from_json(&text).map_err(|e| format!("bad spec: {e}"))?;
    let net = spec.network.resolve().map_err(|e| e.to_string())?;
    let w = net
        .w
        .iter()
        .map(f64::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let z = net
        .z
        .iter()
        .map(f64::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let dev_specs: Vec<String> = spec
        .deviations
        .iter()
        .map(|d| {
            let kind = match d.kind.as_str() {
                "underbid" => "underbid",
                "overbid" => "overbid",
                "slack-execution" => "slack",
                "contradictory-bid" => "contradict",
                "wrong-equivalent" => "wrong-equivalent",
                "wrong-distribution" => "wrong-distribution",
                "shed-load" => "shed",
                "overcharge" => "overcharge",
                "false-accusation" => "false-accusation",
                other => other,
            };
            match d.parameter {
                Some(p) => format!("{}:{}:{}", d.processor, kind, p),
                None => format!("{}:{}", d.processor, kind),
            }
        })
        .collect();
    cmd_run(&w, &z, &dev_specs)
}

fn cmd_sweep(j: &str, w: &str, z: &str) -> Result<(), String> {
    let j: usize = j.parse().map_err(|e| format!("bad index: {e}"))?;
    let net = parse_network(w, z)?;
    let parts = dls::workloads::mechanism_parts(&net);
    if j < 1 || j > parts.true_rates.len() {
        return Err(format!(
            "index {j} out of range 1..={}",
            parts.true_rates.len()
        ));
    }
    let mech = DlsLbl::new(parts.root_rate, parts.link_rates.clone());
    let agents: Vec<Agent> = parts.true_rates.iter().map(|&t| Agent::new(t)).collect();
    let truthful: Vec<Conduct> = agents.iter().map(|&a| Conduct::truthful(a)).collect();
    let factors: Vec<f64> = (1..=30).map(|i| i as f64 * 0.1).collect();
    let sweep = dls::mechanism::verify::bid_sweep(&mech, &agents, j, &truthful, &factors);
    println!("{:>8} {:>10} {:>12}", "bid/t", "bid", "utility");
    for p in &sweep.points {
        let mark = if (p.bid_factor - 1.0).abs() < 1e-9 {
            "  <- truth"
        } else {
            ""
        };
        println!(
            "{:>8.2} {:>10.4} {:>12.6}{mark}",
            p.bid_factor, p.bid, p.utility
        );
    }
    println!(
        "truthful utility {:.6}; best deviation gain {:+.2e} (strategyproof ⇒ ≤ 0)",
        sweep.truthful_utility,
        sweep.max_gain()
    );
    Ok(())
}

fn cmd_multiround(kmax: &str, c: &str, w: &str, z: &str) -> Result<(), String> {
    let kmax: usize = kmax.parse().map_err(|e| format!("bad kmax: {e}"))?;
    let c: f64 = c.parse().map_err(|e| format!("bad startup: {e}"))?;
    let net = parse_network(w, z)?;
    println!("{:>4} {:>12}", "k", "makespan");
    for (k, ms) in dls::dlt::multiround::round_sweep(&net, c, kmax) {
        println!("{k:>4} {ms:>12.6}");
    }
    let (best_k, best_ms) = dls::dlt::multiround::best_rounds(&net, c, kmax);
    println!("best: k = {best_k} (makespan {best_ms:.6})");
    Ok(())
}

fn usage() -> String {
    "usage:\n  dls-cli solve <w0,w1,..> <z1,..>\n  dls-cli gantt <w0,w1,..> <z1,..>\n  dls-cli run <w0,w1,..> <z1,..> [J:KIND[:ARG]]...\n  dls-cli run-file <spec.json>\n  dls-cli sweep <j> <w0,w1,..> <z1,..>\n  dls-cli multiround <kmax> <c> <w0,w1,..> <z1,..>\n\ndeviation kinds: underbid overbid slack contradict wrong-equivalent\n                 wrong-distribution shed overcharge false-accusation"
        .to_string()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("solve") if args.len() == 3 => cmd_solve(&args[1], &args[2]),
        Some("gantt") if args.len() == 3 => cmd_gantt(&args[1], &args[2]),
        Some("run") if args.len() >= 3 => cmd_run(&args[1], &args[2], &args[3..]),
        Some("run-file") if args.len() == 2 => cmd_run_file(&args[1]),
        Some("sweep") if args.len() == 4 => cmd_sweep(&args[1], &args[2], &args[3]),
        Some("multiround") if args.len() == 5 => {
            cmd_multiround(&args[1], &args[2], &args[3], &args[4])
        }
        _ => Err(usage()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
