//! # `dls` — strategyproof divisible load scheduling in linear networks
//!
//! A full reproduction of Carroll & Grosu, *"A Strategyproof Mechanism for
//! Scheduling Divisible Loads in Linear Networks"* (IPPS 2007), as a Rust
//! workspace. This facade crate re-exports the four layers:
//!
//! * [`dlt`] — Divisible Load Theory solvers (Algorithm 1, reductions,
//!   timing, companion bus/star/tree architectures, exact arithmetic).
//! * [`sim`] — discrete-event execution under the one-port/front-end model
//!   (Figure 2), with Gantt recording.
//! * [`mechanism`] — the DLS-LBL payments (eqs. 4.3–4.13), fines, audits,
//!   and empirical strategyproofness/participation checkers.
//! * [`protocol`] — the four-phase signed-message protocol with the
//!   Lemma 5.1 deviation catalog, arbitration, and ledger.
//! * [`workloads`] — random network generators and sweep helpers.
//!
//! ## Quickstart
//!
//! ```
//! use dls::prelude::*;
//!
//! // A chain: obedient root (w=1) and three strategic processors.
//! let scenario = Scenario::honest(1.0, vec![2.0, 0.5, 4.0], vec![0.2, 0.1, 0.7]);
//! let report = dls::protocol::run(&scenario);
//! assert!(report.clean());                 // nobody cheated, nobody fined
//! for j in 1..=3 {
//!     assert!(report.utility(j) >= 0.0);   // Theorem 5.4
//! }
//! ```

pub use dlt;
pub use mechanism;
pub use obs;
pub use protocol;
pub use sim;
pub use workloads;

/// Commonly used items in one import.
pub mod prelude {
    pub use dlt::linear::solve as solve_linear;
    pub use dlt::model::{
        Allocation, LinearNetwork, LocalAllocation, Processor, StarNetwork, TreeNode,
    };
    pub use dlt::timing::{finish_times, makespan, ChainSchedule};
    pub use mechanism::{Agent, Conduct, DlsLbl, FineSchedule};
    pub use protocol::{run as run_protocol, Deviation, RunReport, Scenario};
    pub use sim::{simulate_chain, simulate_honest, GanttChart, NodeBehavior};
    pub use workloads::{ChainConfig, ChainShape};
}
