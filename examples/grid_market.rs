//! Grid-market simulation: a data owner repeatedly rents a chain of
//! machines from a market where operators follow different bidding
//! *policies* across many rounds. Tracks cumulative profit per policy and
//! shows that, under DLS-LBL, the truthful policy is the best any operator
//! can do — the market-level consequence of Theorem 5.3.
//!
//! ```sh
//! cargo run --example grid_market
//! ```

use dls::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A bidding policy an operator might adopt.
#[derive(Clone, Copy, Debug)]
enum Policy {
    Truthful,
    Underbid(f64),
    Overbid(f64),
    Lazy(f64), // truthful bid, slack execution
    Chaotic,   // random misreport each round
}

impl Policy {
    fn label(&self) -> String {
        match self {
            Policy::Truthful => "truthful".into(),
            Policy::Underbid(f) => format!("underbid ×{f}"),
            Policy::Overbid(f) => format!("overbid ×{f}"),
            Policy::Lazy(f) => format!("lazy ×{f}"),
            Policy::Chaotic => "chaotic".into(),
        }
    }

    fn conduct(&self, agent: Agent, rng: &mut StdRng) -> Conduct {
        match *self {
            Policy::Truthful => Conduct::truthful(agent),
            Policy::Underbid(f) => Conduct::misreport(agent, f),
            Policy::Overbid(f) => Conduct::misreport(agent, f),
            Policy::Lazy(f) => Conduct::slack_execution(agent, f),
            Policy::Chaotic => Conduct::misreport(agent, rng.gen_range(0.4..2.5)),
        }
    }
}

fn main() {
    let rounds = 200;
    let mut rng = StdRng::seed_from_u64(2007);
    let policies = [
        Policy::Truthful,
        Policy::Underbid(0.6),
        Policy::Overbid(1.6),
        Policy::Lazy(1.4),
        Policy::Chaotic,
    ];
    let m = policies.len();

    // Cumulative profit of the operator in slot j (policy j), and the
    // counterfactual profit the same operator would have made bidding
    // truthfully in the same rounds.
    let mut cum = vec![0.0f64; m];
    let mut cum_truthful = vec![0.0f64; m];

    for round in 0..rounds {
        // Fresh machines and links every round: the market re-forms.
        let cfg = ChainConfig {
            processors: m + 1,
            ..Default::default()
        };
        let net = workloads::chain(&cfg, 9000 + round);
        let parts = workloads::mechanism_parts(&net);
        let mech = DlsLbl::new(parts.root_rate, parts.link_rates.clone());
        let agents: Vec<Agent> = parts.true_rates.iter().map(|&t| Agent::new(t)).collect();

        let conducts: Vec<Conduct> = agents
            .iter()
            .zip(&policies)
            .map(|(&a, p)| p.conduct(a, &mut rng))
            .collect();
        let outcome = mech.settle(&conducts, false);
        for j in 1..=m {
            cum[j - 1] += outcome.utility(j);
            // Counterfactual: the same round, the same rivals' conduct,
            // but operator j bids truthfully — the dominant-strategy
            // comparison of Theorem 5.3.
            let mut counterfactual = conducts.clone();
            counterfactual[j - 1] = Conduct::truthful(agents[j - 1]);
            cum_truthful[j - 1] += mech.settle(&counterfactual, false).utility(j);
        }
    }

    println!("grid market, {rounds} rounds, {m} operators, fresh chains each round\n");
    println!(
        "{:<16} {:>14} {:>18} {:>12}",
        "policy", "cum. profit", "truthful profit", "regret"
    );
    for (j, p) in policies.iter().enumerate() {
        let regret = cum_truthful[j] - cum[j];
        println!(
            "{:<16} {:>14.4} {:>18.4} {:>12.4}",
            p.label(),
            cum[j],
            cum_truthful[j],
            regret
        );
        assert!(
            regret >= -1e-6,
            "policy {} beat truthfulness — strategyproofness violated",
            p.label()
        );
    }
    println!("\nevery non-truthful policy leaves money on the table (non-negative regret).");
}
