//! Strategic bidding study: sweep one processor's declared speed across a
//! grid and plot (as text) its utility under
//!
//! * the DLS-LBL mechanism (strategyproof: the curve peaks at the truth),
//! * the naive bid-priced baseline (manipulable: the peak moves away).
//!
//! This is experiment E4's logic in example form.
//!
//! ```sh
//! cargo run --example strategic_bidding
//! ```

use dls::mechanism::naive_baseline::NaiveMechanism;
use dls::mechanism::verify::bid_sweep;
use dls::prelude::*;

fn bar(value: f64, lo: f64, hi: f64, width: usize) -> String {
    let frac = ((value - lo) / (hi - lo)).clamp(0.0, 1.0);
    let filled = (frac * width as f64).round() as usize;
    format!("{}{}", "#".repeat(filled), " ".repeat(width - filled))
}

fn main() {
    let root_rate = 1.0;
    let link_rates = vec![0.2, 0.1, 0.7];
    let agents = vec![Agent::new(2.0), Agent::new(0.5), Agent::new(4.0)];
    let mech = DlsLbl::new(root_rate, link_rates.clone());
    let naive = NaiveMechanism::new(root_rate, link_rates.clone(), 1.2);

    let factors: Vec<f64> = (2..=40).map(|i| i as f64 * 0.05).collect(); // 0.10 … 2.00

    for j in 1..=agents.len() {
        let truthful: Vec<Conduct> = agents.iter().map(|&a| Conduct::truthful(a)).collect();
        let sweep = bid_sweep(&mech, &agents, j, &truthful, &factors);
        let naive_curve = naive.sweep(&agents, j, &factors);

        let (lo, hi) = sweep
            .points
            .iter()
            .map(|p| p.utility)
            .chain(naive_curve.iter().map(|&(_, u)| u))
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), u| {
                (l.min(u), h.max(u))
            });

        println!("=== P{j} (true rate {:.2}) ===", agents[j - 1].true_rate);
        println!(
            "{:>6} | {:<30} | {:<30}",
            "bid/t", "DLS-LBL utility", "naive utility"
        );
        for (p, &(_, nu)) in sweep.points.iter().zip(&naive_curve) {
            let marker = if (p.bid_factor - 1.0).abs() < 1e-9 {
                " <= truth"
            } else {
                ""
            };
            println!(
                "{:>6.2} | {} | {}{marker}",
                p.bid_factor,
                bar(p.utility, lo, hi, 30),
                bar(nu, lo, hi, 30),
            );
        }
        let best_dls = sweep
            .points
            .iter()
            .max_by(|a, b| a.utility.total_cmp(&b.utility))
            .expect("non-empty");
        let (best_naive_f, best_naive_u) = naive.best_factor(&agents, j, &factors);
        println!(
            "DLS-LBL best bid: {:.2}×t (gain over truth {:+.2e})   naive best bid: {:.2}×t (gain {:+.4})",
            best_dls.bid_factor,
            sweep.max_gain(),
            best_naive_f,
            best_naive_u - naive.sweep(&agents, j, &[1.0])[0].1,
        );
        assert!(
            sweep.truthful_is_best(1e-9),
            "DLS-LBL must be strategyproof"
        );
        println!();
    }
    println!("DLS-LBL peaks at the truthful bid for every agent; the naive baseline does not.");
}
