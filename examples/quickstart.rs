//! Quickstart: schedule a divisible load on a chain of strategic
//! processors with the DLS-LBL mechanism, end to end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dls::prelude::*;

fn main() {
    // A 5-processor pipeline: the obedient root P0 owns the data (say, a
    // large log to scan) and four rented, self-interested machines hang
    // off it in a daisy chain.
    let root_rate = 1.0; // seconds per unit of load at the root
    let true_rates = vec![1.8, 0.6, 2.5, 1.2]; // the machines' private speeds
    let link_rates = vec![0.25, 0.15, 0.40, 0.10]; // seconds per unit shipped

    // --- Plain DLT view: what is the optimal schedule? ------------------
    let mut w = vec![root_rate];
    w.extend_from_slice(&true_rates);
    let net = LinearNetwork::from_rates(&w, &link_rates);
    let sol = solve_linear(&net);
    println!("optimal allocation (α_i):");
    for (i, &a) in sol.alloc.fractions().iter().enumerate() {
        println!("  P{i}: {a:.4}");
    }
    println!("optimal makespan: {:.4}\n", sol.makespan());

    // Theorem 2.1: every processor finishes at the same instant.
    let times = finish_times(&net, &sol.alloc);
    println!("finish times: {times:.4?}  (all equal)\n");

    // --- Mechanism view: run the full 4-phase protocol -------------------
    let scenario = Scenario::honest(root_rate, true_rates.clone(), link_rates.clone());
    let report = run_protocol(&scenario);
    assert!(report.clean(), "honest run produces no grievances");
    println!(
        "protocol run: makespan {:.4}, {} events simulated",
        report.makespan, report.events
    );
    println!("net utilities (truthful agents, Theorem 5.4 says ≥ 0):");
    for j in 1..=true_rates.len() {
        println!("  P{j}: {:+.4}", report.utility(j));
    }

    // --- What if P2 lies about its speed? --------------------------------
    let mech = DlsLbl::new(root_rate, link_rates.clone());
    let agents: Vec<Agent> = true_rates.iter().map(|&t| Agent::new(t)).collect();
    let truthful = mech.settle_truthful(&agents);
    let mut conducts: Vec<Conduct> = agents.iter().map(|&a| Conduct::truthful(a)).collect();
    conducts[1] = Conduct::misreport(agents[1], 0.5); // P2 claims to be 2× faster
    let lying = mech.settle(&conducts, false);
    println!(
        "\nP2 underbids 2×: utility {:+.4} -> {:+.4}  (truth dominates: Theorem 5.3)",
        truthful.utility(2),
        lying.utility(2)
    );

    // --- And if it cheats during execution? ------------------------------
    let cheat = scenario
        .clone()
        .with_deviation(2, Deviation::ShedLoad { keep_fraction: 0.5 });
    let caught = run_protocol(&cheat);
    let conviction = caught.convictions().next().expect("the shed is detected");
    println!(
        "\nP2 sheds half its load: caught by P{} ({}), fined {:.2}, net utility {:+.4}",
        conviction.claimant,
        conviction.complaint,
        conviction.fine,
        caught.utility(2)
    );
}
