//! Tree scheduling: the companion mechanism DLS-T on a two-level
//! department/rack topology, showing equivalent-processor reduction up the
//! tree, strategyproof settlement, and why the service order matters.
//!
//! ```sh
//! cargo run --example tree_scheduling
//! ```

use dls::dlt::model::TreeNode;
use dls::dlt::{sequencing, tree};
use dls::mechanism::dls_tree::TreeMechanism;
use dls::prelude::*;

fn main() {
    // A data center: the ingest node (root) feeds two racks; each rack
    // switch forwards to its machines. Link rates differ per rack.
    let shape = TreeNode::internal(
        1.0, // the trusted ingest node's own rate
        vec![
            (
                0.30,
                TreeNode::internal(
                    1.0,
                    vec![(0.10, TreeNode::leaf(1.0)), (0.20, TreeNode::leaf(1.0))],
                ),
            ),
            (
                0.12,
                TreeNode::internal(
                    1.0,
                    vec![(0.25, TreeNode::leaf(1.0)), (0.05, TreeNode::leaf(1.0))],
                ),
            ),
        ],
    );
    // True machine speeds (preorder over the canonicalized tree; the
    // mechanism sorts children by ascending link rate, so rack 2 — the
    // faster 0.12 uplink — comes first).
    let agents: Vec<Agent> = [1.4, 2.2, 0.7, 1.9, 1.1, 3.0]
        .iter()
        .map(|&t| Agent::new(t))
        .collect();

    let mech = TreeMechanism::new(shape.clone());
    assert_eq!(mech.num_agents(), agents.len());

    // --- Reduction view ---------------------------------------------------
    let canonical = tree::canonicalize(&shape);
    println!("tree (canonicalized):");
    print_tree(&canonical, 0);
    println!();
    println!();

    // --- Settlement --------------------------------------------------------
    let outcome = mech.settle_truthful(&agents);
    println!("truthful settlement:");
    println!(
        "{:<7} {:>10} {:>10} {:>10}",
        "agent", "assigned", "bonus", "utility"
    );
    for a in &outcome.agents {
        println!(
            "{:<7} {:>10.5} {:>10.5} {:>10.5}",
            format!("P{}", a.agent),
            a.assigned,
            a.bonus,
            a.utility
        );
        assert!(a.utility >= 0.0, "voluntary participation");
    }
    println!(
        "root load: {:.5}   makespan: {:.5}",
        outcome.root_load, outcome.makespan
    );
    println!("(the makespan IS the tree's equivalent processing time under the true rates)");
    println!();

    // --- A machine lies ----------------------------------------------------
    let liar = 2;
    let honest_u = outcome.utility(liar);
    let mut best = f64::NEG_INFINITY;
    for factor in [0.4, 0.7, 1.3, 2.0, 4.0] {
        let mut conducts: Vec<Conduct> = agents.iter().map(|&a| Conduct::truthful(a)).collect();
        conducts[liar - 1] = Conduct::misreport(agents[liar - 1], factor);
        best = best.max(mech.settle(&conducts).utility(liar));
    }
    println!(
        "P{liar} tries five misreports: best deviant utility {best:.5} vs truthful {honest_u:.5} (truth wins)"
    );
    assert!(best <= honest_u + 1e-9);
    println!();

    // --- Why the order matters ---------------------------------------------
    let star_view = dls::dlt::model::StarNetwork::from_rates(&[1.0, 0.9, 1.4], &[0.30, 0.12]);
    let search = sequencing::exhaustive_best_order(&star_view);
    println!(
        "service-order check at the root (2 subtrees): best order {:?}, makespan {:.5} vs worst {:.5}",
        search.best_order, search.best_makespan, search.worst_makespan
    );
    println!("the mechanism always serves the faster uplink first (canonical order).");
}

fn print_tree(node: &TreeNode, depth: usize) {
    println!(
        "{}• w={:.2}{}",
        "  ".repeat(depth),
        node.processor.w,
        if depth == 0 { "  (trusted root)" } else { "" }
    );
    for (link, child) in &node.children {
        println!("{}└─ link z={:.2}", "  ".repeat(depth + 1), link.z);
        print_tree(child, depth + 2);
    }
}
