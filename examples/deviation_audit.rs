//! Deviation audit: inject every misbehavior from Lemma 5.1's catalog into
//! a rented-cluster scenario and watch the protocol catch and fine each
//! one. Prints the detection table of experiment E6.
//!
//! ```sh
//! cargo run --example deviation_audit
//! ```

use dls::prelude::*;

fn main() {
    // A 6-processor chain: data-owning root plus five rented machines.
    let scenario = Scenario::honest(
        1.0,
        vec![1.5, 0.8, 2.2, 1.1, 3.0],
        vec![0.2, 0.15, 0.3, 0.1, 0.25],
    )
    // Audit every bill so Phase IV misconduct is caught deterministically
    // in this demo (the expected-value analysis for q < 1 is experiment E7).
    .with_fine(FineSchedule::new(20.0, 1.0));

    let honest = run_protocol(&scenario);
    println!(
        "honest run: clean={}, makespan={:.4}",
        honest.clean(),
        honest.makespan
    );
    println!(
        "{:<20} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "deviation", "caught", "by", "U(deviant)", "U(honest)", "delta"
    );

    let target = 3; // P3 misbehaves in every experiment below
    for deviation in Deviation::catalog() {
        let run = run_protocol(&scenario.clone().with_deviation(target, deviation));
        // For a false accusation the "conviction" is the rejection itself:
        // the root exculpates the accused and fines the claimant.
        let detected = match deviation {
            Deviation::FalseAccusation => run
                .arbitrations
                .iter()
                .find(|a| !a.substantiated && a.claimant == target),
            _ => run.convictions().next(),
        };
        let caught = match deviation {
            // Pure misreports are priced, not fined.
            Deviation::Underbid { .. }
            | Deviation::Overbid { .. }
            | Deviation::SlackExecution { .. } => "n/a",
            _ if detected.is_some() => "yes",
            _ => "NO",
        };
        let by = detected
            .map(|c| {
                if matches!(deviation, Deviation::FalseAccusation) {
                    "root".to_string()
                } else {
                    format!("P{}", c.claimant)
                }
            })
            .unwrap_or_else(|| "-".into());
        let u_dev = run.utility(target);
        let u_hon = honest.utility(target);
        println!(
            "{:<20} {:>8} {:>10} {:>12.4} {:>12.4} {:>10.4}",
            deviation.label(),
            caught,
            by,
            u_dev,
            u_hon,
            u_dev - u_hon,
        );
        assert!(
            u_dev <= u_hon + 1e-9,
            "{} must not profit (Theorems 5.1/5.3)",
            deviation.label()
        );
        if deviation.is_finable() {
            assert!(detected.is_some(), "{} must be detected", deviation.label());
        }
    }

    // Lemma 5.2: across all those deviant runs, honest nodes are never
    // fined. Spot-check the false-accusation case, where the *claimant*
    // pays.
    let fa = run_protocol(
        &scenario
            .clone()
            .with_deviation(target, Deviation::FalseAccusation),
    );
    let record = &fa.arbitrations[0];
    println!(
        "\nfalse accusation arbitration: claimant P{} fined {:.2}, accused P{} exculpated and rewarded",
        record.claimant, record.fine, record.accused
    );
}
