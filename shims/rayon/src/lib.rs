//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so this shim maps the
//! parallel-iterator entry points used by the workspace onto ordinary
//! sequential iterators. Semantics are identical; speedup is not. The
//! experiment harness's `par_sweep` stays correct (and its ablation bench
//! degenerates to comparing two sequential drivers).

#![forbid(unsafe_code)]

/// Sequential re-implementation of the rayon prelude.
pub mod prelude {
    /// Conversion into a "parallel" (here: sequential) iterator.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item;
        /// Iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Convert (sequential stand-in for `into_par_iter`).
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Borrowing variant (`par_iter`).
    pub trait IntoParallelRefIterator<'a> {
        /// Element type.
        type Item: 'a;
        /// Iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterate by reference (sequential stand-in for `par_iter`).
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn into_par_iter_matches_sequential() {
        let out: Vec<u64> = (0u64..10).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0u64..10).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![1, 2, 3];
        let s: i32 = v.par_iter().sum();
        assert_eq!(s, 6);
    }
}
