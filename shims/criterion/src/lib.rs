//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Throughput`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark closure is
//! run a small fixed number of iterations with a monotonic-clock timing
//! printed per benchmark: enough to compile the bench targets, smoke-run
//! them under `cargo test`, and get coarse relative numbers from
//! `cargo bench`, without the statistical machinery of real criterion.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Re-export matching `criterion::black_box` (some benches import the std
/// version directly; both work).
pub use std::hint::black_box;

/// Number of timed iterations per benchmark.
const ITERS: u32 = 10;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            _throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    _throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Record the input size (ignored beyond storage).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self._throughput = Some(t);
        self
    }

    /// Shrink the sample count (ignored; the shim always runs few iters).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, &mut |b| f(b, input));
        self
    }

    /// Benchmark without an input parameter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, &mut f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// A benchmark identifier (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Function name plus parameter.
    pub fn new(name: &str, parameter: impl Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Input-size annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-benchmark timing harness handed to closures.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos: u128,
    iters: u32,
}

impl Bencher {
    /// Time `f` over a fixed number of iterations.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        self.nanos = start.elapsed().as_nanos();
        self.iters = ITERS;
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::default();
    f(&mut b);
    if b.iters > 0 {
        let per = b.nanos / b.iters as u128;
        println!("bench {label}: {per} ns/iter ({} iters)", b.iters);
    } else {
        println!("bench {label}: no iterations recorded");
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran >= ITERS);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.sample_size(10);
        let input = vec![1.0f64; 4];
        group.bench_with_input(BenchmarkId::new("sum", 4), &input, |b, v| {
            b.iter(|| v.iter().sum::<f64>())
        });
        group.bench_function("id", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
