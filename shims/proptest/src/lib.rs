//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API used by this workspace's test
//! suites: range/tuple/`Just`/`collection::vec`/`sample::select`
//! strategies, `prop_map` / `prop_flat_map` combinators, the `proptest!`
//! macro with `#![proptest_config(...)]`, and `prop_assert*` macros.
//!
//! Cases are generated from a deterministic seeded RNG (per test name), so
//! failures are reproducible. There is **no shrinking**: on failure the
//! offending inputs are printed verbatim.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config with the given number of cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `f` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive candidates",
            self.whence
        );
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, i64, i32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::*;

    /// Lengths accepted by [`vec`].
    pub trait IntoSizeRange {
        /// Draw a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Vector of `len` elements drawn from `element`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`proptest::sample::select`).
pub mod sample {
    use super::*;

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T: Clone>(Vec<T>);

    /// Choose uniformly from `items` (must be non-empty).
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select over empty list");
        Select(items)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

/// Drive `cases` random executions of `body`, printing the inputs of a
/// failing case before propagating its panic. Used by the [`proptest!`]
/// macro expansion; not intended for direct use.
pub fn run_cases<V: Debug>(
    config: &ProptestConfig,
    test_name: &str,
    mut gen: impl FnMut(&mut TestRng) -> V,
    body: impl Fn(V),
) {
    // Per-test deterministic seed: FNV over the test name.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    let mut rng = TestRng::seed_from_u64(seed);
    for case in 0..config.cases {
        let value = gen(&mut rng);
        let shown = format!("{value:?}");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(value)));
        if let Err(payload) = result {
            eprintln!(
                "proptest case {case}/{} of `{test_name}` failed for inputs: {shown}",
                config.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Property-test entry macro. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0.0f64..1.0, v in proptest::collection::vec(0usize..9, 3)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(
                    &config,
                    stringify!($name),
                    |__rng| ( $( $crate::Strategy::generate(&($strat), __rng), )* ),
                    |( $($pat,)* )| { $body },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a property (no shrinking; panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair_strategy() -> impl Strategy<Value = (usize, Vec<f64>)> {
        (1usize..=4).prop_flat_map(|n| (Just(n), crate::collection::vec(0.0f64..1.0, n)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.5f64..2.0, k in 3usize..=7) {
            prop_assert!((0.5..2.0).contains(&x));
            prop_assert!((3..=7).contains(&k));
        }

        #[test]
        fn flat_map_links_length(p in pair_strategy()) {
            let (n, v) = p;
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn select_draws_members(s in prop::sample::select(vec![1, 2, 3])) {
            prop_assert!([1, 2, 3].contains(&s));
        }

        #[test]
        fn assume_skips(x in 0usize..10) {
            prop_assume!(x != 5);
            prop_assert!(x != 5);
        }
    }

    #[test]
    fn determinism_per_test_name() {
        let cfg = ProptestConfig::with_cases(5);
        let mut a = Vec::new();
        crate::run_cases(
            &cfg,
            "t",
            |rng| a.push(Strategy::generate(&(0.0f64..1.0), rng)),
            |_| {},
        );
        let mut b = Vec::new();
        crate::run_cases(
            &cfg,
            "t",
            |rng| b.push(Strategy::generate(&(0.0f64..1.0), rng)),
            |_| {},
        );
        assert_eq!(a, b);
    }
}
