//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the (small) slice of the `rand` 0.8 API the workspace actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] over
//! integer and float ranges, and [`Rng::gen_bool`], backed by the
//! xoshiro256++ generator seeded through splitmix64. Deterministic across
//! platforms and runs; not cryptographic — exactly like the simulation's
//! needs.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding trait (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256++ state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw a uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
}

/// The user-facing convenience trait, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The standard generator (xoshiro256++ here; the real crate uses
    /// ChaCha12 — statistically interchangeable for simulation purposes).
    pub type StdRng = super::Xoshiro256;
    /// The small fast generator (same engine in this shim).
    pub type SmallRng = super::Xoshiro256;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.25..4.0);
            assert!((0.25..4.0).contains(&x));
            let y: f64 = rng.gen_range(1.0..=2.0);
            assert!((1.0..=2.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_respect_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let k: usize = rng.gen_range(0..5);
            seen[k] = true;
            let j: usize = rng.gen_range(1..=3);
            assert!((1..=3).contains(&j));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
